"""Unit tests for placement policies: determinism, floors, membership."""

import pytest

from repro.common.errors import ConfigError
from repro.placement import (
    POLICY_NAMES,
    FullPolicy,
    PlacementContext,
    PlacementPolicy,
    TenantAffinePolicy,
    TopKPolicy,
    ZipfWeightedPolicy,
    fleet_popularity,
    make_policy,
    observed_popularity,
    zipf_weights,
)

NODES = tuple(f"compute{i}" for i in range(8))


def ctx(popularity, nodes=NODES, owners=(), tenant_weights=()):
    return PlacementContext(
        nodes=nodes,
        popularity=tuple(popularity),
        owners=tuple(owners),
        tenant_weights=tuple(tenant_weights),
    )


def skewed(n=12, exponent=1.0):
    return tuple(float(w) for w in zipf_weights(n, exponent))


class TestPopularity:
    def test_zipf_weights_sum_to_one(self):
        weights = zipf_weights(10, 0.9)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_observed_counts_normalise(self):
        pmf = observed_popularity([3, 1, 0])
        assert abs(sum(pmf) - 1.0) < 1e-12
        assert pmf[0] == pytest.approx(0.75)

    def test_observed_all_zero_is_uniform(self):
        pmf = observed_popularity([0, 0, 0, 0])
        assert all(p == pytest.approx(0.25) for p in pmf)


class TestFull:
    def test_every_node_holds_every_image(self):
        placement = FullPolicy().place(ctx(skewed(5)))
        assert set(placement) == set(range(5))
        assert all(holders == NODES for holders in placement.values())


class TestTopK:
    def test_hot_set_is_fleet_wide_tail_gets_floor(self):
        popularity = skewed(10, 1.2)
        policy = TopKPolicy(top_k=3, replica_floor=2)
        placement = policy.place(ctx(popularity))
        # zipf popularity is descending in image id, so hot = {0, 1, 2}
        for image_id in range(3):
            assert placement[image_id] == NODES
        for image_id in range(3, 10):
            assert len(placement[image_id]) == 2
            assert set(placement[image_id]) <= set(NODES)

    def test_tail_replicas_strictly_fewer_nodes(self):
        placement = TopKPolicy(top_k=1, replica_floor=2).place(ctx(skewed(6)))
        assert sum(len(h) for h in placement.values()) < 6 * len(NODES)

    def test_deterministic_across_instances(self):
        a = TopKPolicy(top_k=2, replica_floor=2).place(ctx(skewed(9)))
        b = TopKPolicy(top_k=2, replica_floor=2).place(ctx(skewed(9)))
        assert a == b

    def test_scatter_keyed_on_fleet_size(self):
        small = TopKPolicy(top_k=0, replica_floor=2).place(ctx(skewed(4)))
        large = TopKPolicy(top_k=0, replica_floor=2).place(
            ctx(skewed(4), nodes=tuple(f"compute{i}" for i in range(16)))
        )
        assert any(small[i] != large[i] for i in range(4))

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError, match="non-negative"):
            TopKPolicy(top_k=-1).place(ctx(skewed(3)))
        with pytest.raises(ConfigError, match="floor"):
            TopKPolicy(replica_floor=0).place(ctx(skewed(3)))


class TestZipfWeighted:
    def test_replicas_monotone_in_popularity(self):
        placement = ZipfWeightedPolicy(replica_floor=1).place(
            ctx(skewed(10, 1.3))
        )
        counts = [len(placement[i]) for i in range(10)]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        # the hottest image saturates the fleet, the tail does not
        assert counts[0] == len(NODES)
        assert counts[-1] < len(NODES)

    def test_floor_respected(self):
        placement = ZipfWeightedPolicy(replica_floor=3).place(
            ctx(skewed(10, 2.0))
        )
        assert all(len(h) >= 3 for h in placement.values())


class TestTenantAffine:
    def test_images_of_one_tenant_colocate(self):
        popularity = skewed(6)
        owners = (0, 0, 1, 1, 2, 2)
        weights = (0.5, 0.3, 0.2)
        placement = TenantAffinePolicy(replica_floor=2).place(
            ctx(popularity, owners=owners, tenant_weights=weights)
        )
        assert placement[0] == placement[1]
        assert placement[2] == placement[3]
        # heavier tenants get larger affinity sets
        assert len(placement[0]) >= len(placement[4])

    def test_requires_tenancy_inputs(self):
        with pytest.raises(ConfigError, match="tenant_affine"):
            TenantAffinePolicy().place(ctx(skewed(4)))


class TestMakePolicy:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, top_k=4, replica_floor=2)
            assert isinstance(policy, PlacementPolicy)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown placement policy"):
            make_policy("hoard_everything")


class TestFleetPopularity:
    def test_matches_tenant_population_mixture(self):
        from repro.workload import TenantPopulation

        population = TenantPopulation(4, 10, seed=7, zipf_exponent=0.9)
        pmf = fleet_popularity(population)
        assert abs(sum(pmf) - 1.0) < 1e-9
        assert len(pmf) == 10
