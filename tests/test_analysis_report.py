"""Unit tests for report rendering."""

import pytest

from repro.analysis import Series, TextTable, render_series


class TestTextTable:
    def test_renders_title_headers_rows(self):
        table = TextTable("Table 3: RMSE", ["Block size", "Linear", "MMF"])
        table.add_row("64 KB", 0.03, 0.04)
        out = table.render()
        assert "Table 3: RMSE" in out
        assert "Block size" in out
        assert "0.03" in out

    def test_wrong_arity_rejected(self):
        table = TextTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_alignment(self):
        table = TextTable("t", ["x", "longheader"])
        table.add_row(1, 2)
        lines = table.render().splitlines()
        # header and data rows have equal width
        assert len(lines[2]) == len(lines[4])


class TestSeries:
    def test_add_and_accessors(self):
        s = Series("caches")
        s.add(1, 2.0)
        s.add(4, 3.0)
        assert s.xs() == [1.0, 4.0]
        assert s.ys() == [2.0, 3.0]

    def test_render_aligns_on_shared_x(self):
        a = Series("a")
        a.add(1, 1.0)
        a.add(2, 2.0)
        b = Series("b")
        b.add(2, 4.0)
        out = render_series("Figure X", [a, b], x_label="bs")
        assert "Figure X" in out
        assert "1.00" in out and "4.00" in out
        assert "-" in out  # missing point marker for b at x=1

    def test_custom_format(self):
        s = Series("s")
        s.add(1, 1.23456)
        out = render_series("f", [s], y_format="{:.4f}")
        assert "1.2346" in out
