"""Integration tests for the boot simulator (Figure 11's machinery)."""

import numpy as np
import pytest

from repro.boot import BootSimulator, ZfsCostModel
from repro.common.errors import BootError
from repro.vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    block_view,
    cache_stream,
    make_estimator,
)
from repro.zfs import ZPool

SCALE = 1 / 512


@pytest.fixture(scope="module")
def dataset():
    return AzureCommunityDataset(DatasetConfig(scale=SCALE))


@pytest.fixture(scope="module")
def sample(dataset):
    return dataset.images[::101][:5]


def build_cvolume(dataset, block_size):
    est = make_estimator("gzip6", (block_size,), samples_per_point=3)
    pool = ZPool(capacity=1 << 40, store_payloads=False)
    vol = pool.create_dataset("ccvol", record_size=block_size, dedup=True)
    for spec in dataset:
        view = block_view(cache_stream(spec), block_size)
        psizes = view.psizes(est)
        vol.write_file_virtual(
            f"cache-{spec.image_id}",
            zip(
                view.signatures.tolist(),
                view.lsizes.tolist(),
                psizes.tolist(),
                view.is_hole.tolist(),
            ),
        )
    return pool, vol


@pytest.fixture(scope="module")
def cvolume_64k(dataset):
    return build_cvolume(dataset, 65536)


class TestPlainConfigs:
    def test_unknown_config_rejected(self, sample):
        sim = BootSimulator(io_scale=SCALE)
        with pytest.raises(BootError):
            sim.boot_plain(sample[0], "warm-zfs")

    def test_boot_times_in_plausible_range(self, sample):
        sim = BootSimulator(io_scale=SCALE)
        for config in ("qcow2-xfs", "warm-xfs", "cold-xfs"):
            for spec in sample:
                result = sim.boot_plain(spec, config)
                assert 8.0 < result.total_seconds < 60.0

    def test_warm_cache_beats_baseline(self, sample):
        """The paper's headline boot claim: warm caches boot faster than the
        VMI on local disk."""
        sim = BootSimulator(io_scale=SCALE)
        warm = np.mean(
            [sim.boot_plain(s, "warm-xfs").total_seconds for s in sample]
        )
        base = np.mean(
            [sim.boot_plain(s, "qcow2-xfs").total_seconds for s in sample]
        )
        assert warm < base
        assert (base - warm) / base > 0.05  # >5% faster on average

    def test_cold_cache_costs_more_than_warm(self, sample):
        sim = BootSimulator(io_scale=SCALE)
        cold = np.mean(
            [sim.boot_plain(s, "cold-xfs").total_seconds for s in sample]
        )
        warm = np.mean(
            [sim.boot_plain(s, "warm-xfs").total_seconds for s in sample]
        )
        assert cold > warm

    def test_cpu_identical_across_configs(self, sample):
        sim = BootSimulator(io_scale=SCALE)
        spec = sample[0]
        cpus = {
            config: sim.boot_plain(spec, config).cpu_seconds
            for config in ("qcow2-xfs", "warm-xfs", "cold-xfs")
        }
        assert len({round(c, 6) for c in cpus.values()}) == 1


class TestCVolumeBoots:
    def test_boot_reads_blocks(self, sample, cvolume_64k):
        _, vol = cvolume_64k
        sim = BootSimulator(io_scale=SCALE)
        result = sim.boot_from_cvolume(sample[0], vol, f"cache-{sample[0].image_id}")
        assert result.blocks_read > 0
        assert result.config == "warm-zfs"

    def test_zfs_boot_competitive_at_64k(self, sample, cvolume_64k):
        """Section 4.2.4: dedup+gzip cVolume boots ~as fast as plain storage
        at 64 KB — the compression overhead is masked."""
        _, vol = cvolume_64k
        sim = BootSimulator(io_scale=SCALE)
        zfs = np.mean(
            [
                sim.boot_from_cvolume(s, vol, f"cache-{s.image_id}").total_seconds
                for s in sample
            ]
        )
        base = np.mean(
            [sim.boot_plain(s, "qcow2-xfs").total_seconds for s in sample]
        )
        assert zfs < base * 1.05

    def test_small_blocks_boot_slower(self, dataset, sample):
        """Figure 11's left edge: tiny block sizes degrade boot sharply."""
        _, vol_small = build_cvolume(dataset, 2048)
        _, vol_large = build_cvolume(dataset, 65536)
        sim = BootSimulator(io_scale=SCALE)
        small = np.mean(
            [
                sim.boot_from_cvolume(s, vol_small, f"cache-{s.image_id}").total_seconds
                for s in sample
            ]
        )
        large = np.mean(
            [
                sim.boot_from_cvolume(s, vol_large, f"cache-{s.image_id}").total_seconds
                for s in sample
            ]
        )
        assert small > large * 1.2

    def test_custom_cost_model_respected(self, sample, cvolume_64k):
        _, vol = cvolume_64k
        slow = ZfsCostModel(per_block_cpu_s=5e-3)
        fast = ZfsCostModel(per_block_cpu_s=1e-6)
        spec = sample[0]
        t_slow = BootSimulator(io_scale=SCALE, zfs_costs=slow).boot_from_cvolume(
            spec, vol, f"cache-{spec.image_id}"
        )
        t_fast = BootSimulator(io_scale=SCALE, zfs_costs=fast).boot_from_cvolume(
            spec, vol, f"cache-{spec.image_id}"
        )
        assert t_slow.io_seconds > t_fast.io_seconds
