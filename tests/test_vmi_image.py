"""Unit tests for image specs and stream synthesis."""

import numpy as np
import pytest

from repro.vmi import DatasetConfig
from repro.vmi.dataset import AzureCommunityDataset
from repro.vmi.distro import Release
from repro.vmi.image import ImageSpec, MutationProfile, cache_stream, image_stream


def make_spec(image_id=0, seed=123, cache_kb=512, nonzero_kb=4096, **overrides):
    defaults = dict(
        image_id=image_id,
        release=Release("ubuntu", "12.04", 0.5, 6),
        seed=seed,
        raw_bytes=64 << 20,
        nonzero_bytes=nonzero_kb * 1024,
        cache_bytes=cache_kb * 1024,
        base_fraction=0.5,
        package_fraction=0.3,
        mutation=MutationProfile(
            boot_rate=0.3, body_rate=0.2, region_mean_grains=64, region_sigma=1.5
        ),
        boot_span_grains=1024,
    )
    defaults.update(overrides)
    return ImageSpec(**defaults)


class TestSpecProperties:
    def test_grain_counts(self):
        spec = make_spec(cache_kb=512, nonzero_kb=4096)
        assert spec.cache_grains == 512
        assert spec.nonzero_grains == 4096
        assert spec.body_grains == 4096 - 512
        assert spec.base_body_grains + spec.user_grains == spec.body_grains

    def test_cache_never_exceeds_nonzero(self):
        spec = make_spec(cache_kb=100, nonzero_kb=100)
        assert spec.body_grains == 0


class TestCacheStream:
    def test_length(self):
        spec = make_spec()
        assert cache_stream(spec).size == spec.cache_grains

    def test_deterministic(self):
        spec = make_spec()
        assert np.array_equal(cache_stream(spec), cache_stream(spec))

    def test_mutation_rate_in_expected_band(self):
        spec = make_spec(cache_kb=8192, nonzero_kb=65536)
        master_like = make_spec(
            seed=999,
            cache_kb=8192,
            nonzero_kb=65536,
            mutation=MutationProfile(0.0, 0.0, 64, 1.5),
        )
        mutated = cache_stream(spec)
        pristine = cache_stream(master_like)
        diverged = (mutated != pristine).mean()
        # clustered Poisson coverage of a 0.3 target: wide but bounded band
        assert 0.05 < diverged < 0.55

    def test_zero_mutation_equals_master(self):
        a = make_spec(seed=1, mutation=MutationProfile(0.0, 0.0, 64, 1.5))
        b = make_spec(seed=2, mutation=MutationProfile(0.0, 0.0, 64, 1.5))
        assert np.array_equal(cache_stream(a), cache_stream(b))

    def test_two_images_same_release_share_content(self):
        a = cache_stream(make_spec(image_id=1, seed=1))
        b = cache_stream(make_spec(image_id=2, seed=2))
        shared = (a == b).mean()
        assert shared > 0.3  # same master, independent mutations

    def test_no_hole_grains_in_cache(self):
        assert (cache_stream(make_spec()) != 0).all()


class TestImageStream:
    def test_cache_is_prefix_of_image(self):
        spec = make_spec()
        img = image_stream(spec)
        assert np.array_equal(img[: spec.cache_grains], cache_stream(spec))

    def test_hole_padding_to_boot_span(self):
        spec = make_spec(cache_kb=512, boot_span_grains=1024)
        img = image_stream(spec)
        assert (img[512:1024] == 0).all()
        assert (img[1024 : 1024 + 10] != 0).all()

    def test_nonzero_grain_count_matches_spec(self):
        spec = make_spec()
        img = image_stream(spec)
        assert int((img != 0).sum()) == spec.nonzero_grains

    def test_deterministic(self):
        spec = make_spec()
        assert np.array_equal(image_stream(spec), image_stream(spec))

    def test_base_body_aligned_across_siblings(self):
        """Two images of one release share base-body content at identical
        stream positions (the alignment property behind large-block dedup)."""
        a_spec = make_spec(image_id=1, seed=1, cache_kb=400)
        b_spec = make_spec(image_id=2, seed=2, cache_kb=700)
        a, b = image_stream(a_spec), image_stream(b_spec)
        start, span = 1024, 1024
        shared = (a[start : start + span] == b[start : start + span]).mean()
        assert shared > 0.4


class TestDatasetIntegration:
    @pytest.fixture(scope="class")
    def tiny(self):
        return AzureCommunityDataset(DatasetConfig(scale=1 / 2048))

    def test_boot_span_is_release_constant(self, tiny):
        spans = {}
        for spec in tiny:
            key = (spec.release.family, spec.release.name)
            spans.setdefault(key, set()).add(spec.boot_span_grains)
        assert all(len(v) == 1 for v in spans.values())

    def test_boot_span_covers_every_cache(self, tiny):
        for spec in tiny:
            assert spec.boot_span_grains >= spec.cache_grains

    def test_boot_span_block_aligned(self, tiny):
        for spec in tiny:
            assert spec.boot_span_grains % 1024 == 0
