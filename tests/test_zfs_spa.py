"""Unit tests for the space allocator."""

import pytest

from repro.common.errors import PoolFullError
from repro.zfs.spa import SECTOR_SIZE, SpaceMap


class TestAllocate:
    def test_offsets_are_write_ordered(self):
        spa = SpaceMap(capacity=1 << 20)
        first = spa.allocate(1024)
        second = spa.allocate(1024)
        assert second > first

    def test_sector_alignment_charged(self):
        spa = SpaceMap(capacity=1 << 20)
        spa.allocate(1)
        assert spa.allocated_bytes == SECTOR_SIZE

    def test_pool_full_raises(self):
        spa = SpaceMap(capacity=1024)
        spa.allocate(1024)
        with pytest.raises(PoolFullError):
            spa.allocate(1)

    def test_rejects_nonpositive_size(self):
        spa = SpaceMap(capacity=1024)
        with pytest.raises(ValueError):
            spa.allocate(0)


class TestFree:
    def test_free_returns_aligned_size(self):
        spa = SpaceMap(capacity=1 << 20)
        dva = spa.allocate(700)
        assert spa.free(dva) == 1024
        assert spa.allocated_bytes == 0

    def test_freed_capacity_is_reusable(self):
        spa = SpaceMap(capacity=2048)
        dva = spa.allocate(2048)
        spa.free(dva)
        spa.allocate(2048)  # must not raise

    def test_double_free_raises(self):
        spa = SpaceMap(capacity=1 << 20)
        dva = spa.allocate(512)
        spa.free(dva)
        with pytest.raises(PoolFullError):
            spa.free(dva)

    def test_unknown_dva_raises(self):
        spa = SpaceMap(capacity=1 << 20)
        with pytest.raises(PoolFullError):
            spa.free(12345)


class TestCounters:
    def test_high_water_never_shrinks(self):
        spa = SpaceMap(capacity=1 << 20)
        a = spa.allocate(1024)
        spa.allocate(1024)
        spa.free(a)
        assert spa.high_water_offset == 2048

    def test_allocation_counts(self):
        spa = SpaceMap(capacity=1 << 20)
        a = spa.allocate(512)
        spa.allocate(512)
        spa.free(a)
        assert spa.allocation_count == 1
        assert spa.total_allocations == 2

    def test_free_bytes(self):
        spa = SpaceMap(capacity=4096)
        spa.allocate(1024)
        assert spa.free_bytes == 3072
