"""Unit tests for ZPool + ZIO write/read pipeline."""

import pytest

from repro.common.errors import ObjectNotFoundError, StorageError
from repro.zfs import ZPool
from repro.zfs.spa import SECTOR_SIZE


@pytest.fixture
def pool():
    return ZPool(capacity=64 << 20, arc_capacity=1 << 20)


@pytest.fixture
def ds(pool):
    return pool.create_dataset("cvol", record_size=4096, compression="gzip6", dedup=True)


class TestDatasetNamespace:
    def test_create_and_get(self, pool):
        created = pool.create_dataset("a")
        assert pool.dataset("a") is created

    def test_duplicate_rejected(self, pool):
        pool.create_dataset("a")
        with pytest.raises(StorageError):
            pool.create_dataset("a")

    def test_missing_raises(self, pool):
        with pytest.raises(ObjectNotFoundError):
            pool.dataset("nope")

    def test_destroy_removes(self, pool):
        pool.create_dataset("a")
        pool.destroy_dataset("a")
        assert not pool.has_dataset("a")


class TestBytesPipeline:
    def test_round_trip(self, ds):
        data = b"squirrel" * 512  # one full 4 KB record
        ds.write_block("f", 0, data)
        assert ds.read_block("f", 0) == data

    def test_zero_block_becomes_hole(self, ds, pool):
        ds.write_block("f", 0, bytes(4096))
        assert pool.data_bytes == 0
        assert ds.file("f").get_block(0).is_hole

    def test_dedup_identical_blocks_allocate_once(self, ds, pool):
        data = b"x" * 2048 + bytes(2048)
        ds.write_block("f", 0, data)
        allocated_after_first = pool.data_bytes
        ds.write_block("f", 1, data)
        ds.write_block("g", 0, data)
        assert pool.data_bytes == allocated_after_first
        assert pool.ddt.entry_count == 1
        assert pool.dedup_ratio() == pytest.approx(3.0)

    def test_compression_shrinks_allocation(self, ds, pool):
        ds.write_block("f", 0, b"a" * 4096)
        assert 0 < pool.data_bytes < 4096

    def test_incompressible_allocates_raw(self, pool):
        import numpy as np

        ds = pool.create_dataset("raw", record_size=4096)
        rng = np.random.default_rng(1)
        data = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
        ds.write_block("f", 0, data)
        assert pool.data_bytes == 4096
        assert ds.read_block("f", 0) == data

    def test_oversized_block_rejected(self, ds):
        with pytest.raises(StorageError):
            ds.write_block("f", 0, b"x" * 8192)

    def test_write_file_and_read_file(self, ds):
        data = b"kernel" * 3000  # ~18 KB, several records
        ds.write_file("vmlinuz", data)
        assert ds.read_file("vmlinuz") == data

    def test_sparse_file_holes_read_as_zeros(self, ds):
        ds.write_block("f", 3, b"y" * 4096)
        assert ds.read_block("f", 0) == bytes(4096)
        assert ds.file("f").get_block(0).is_hole


class TestVirtualPipeline:
    def test_virtual_write_accounts_without_bytes(self, ds, pool):
        ds.write_block_virtual("f", 0, signature=42, lsize=4096, psize=1000)
        assert pool.data_bytes == ((1000 + SECTOR_SIZE - 1) // SECTOR_SIZE) * SECTOR_SIZE
        assert pool.ddt.entry_count == 1

    def test_virtual_dedup(self, ds, pool):
        ds.write_block_virtual("f", 0, signature=42, lsize=4096, psize=1000)
        ds.write_block_virtual("f", 1, signature=42, lsize=4096, psize=1000)
        assert pool.ddt.entry_count == 1
        assert pool.ddt.lookup("v:" + format(42, "016x")).refcount == 2

    def test_virtual_hole(self, ds, pool):
        ds.write_block_virtual("f", 0, signature=0, lsize=4096, psize=0, is_hole=True)
        assert pool.data_bytes == 0

    def test_virtual_read_raises(self, ds):
        ds.write_block_virtual("f", 0, signature=42, lsize=4096, psize=1000)
        with pytest.raises(StorageError, match="image provider"):
            ds.read_block("f", 0)

    def test_virtual_psize_bounds_checked(self, ds):
        with pytest.raises(StorageError):
            ds.write_block_virtual("f", 0, signature=1, lsize=4096, psize=5000)

    def test_virtual_and_bytes_namespaces_disjoint(self, ds, pool):
        ds.write_block("f", 0, b"z" * 4096)
        ds.write_block_virtual("f", 1, signature=7, lsize=4096, psize=100)
        assert pool.ddt.entry_count == 2


class TestPlainMode:
    def test_no_dedup_when_disabled(self, pool):
        ds = pool.create_dataset("xfs", record_size=4096, compression="off", dedup=False)
        data = b"q" * 4096
        ds.write_block("f", 0, data)
        ds.write_block("f", 1, data)
        assert pool.ddt.entry_count == 0  # charged DDT untouched
        assert pool.data_bytes == 8192
        assert ds.read_block("f", 1) == data

    def test_plain_free_reclaims(self, pool):
        ds = pool.create_dataset("xfs", record_size=4096, compression="off", dedup=False)
        ds.write_block("f", 0, b"q" * 4096)
        ds.delete_file("f")
        assert pool.data_bytes == 0


class TestAccounting:
    def test_stats_snapshot(self, ds, pool):
        ds.write_block("f", 0, b"m" * 4096)
        stats = pool.stats()
        assert stats.data_bytes == pool.data_bytes
        assert stats.ddt_entries == 1
        assert stats.disk_used_bytes == stats.data_bytes + stats.ddt_disk_bytes
        assert stats.memory_used_bytes == stats.ddt_core_bytes + stats.arc_bytes

    def test_free_on_overwrite(self, ds, pool):
        ds.write_block("f", 0, b"a" * 4096)
        before = pool.data_bytes
        ds.write_block("f", 0, b"b" * 4096)
        assert pool.data_bytes == before  # same compressibility, old freed

    def test_delete_file_reclaims_all(self, ds, pool):
        ds.write_file("f", b"a" * 40960)
        ds.delete_file("f")
        assert pool.data_bytes == 0
        assert pool.ddt.entry_count == 0

    def test_txg_monotonic(self, pool):
        first = pool.advance_txg()
        second = pool.advance_txg()
        assert second == first + 1
