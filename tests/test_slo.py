"""SLO specs, checks, and baseline diffs.

The contracts under test:

* spec parsing rejects malformed rules loudly (no silent skips),
* ``worst`` aggregation resolves to the bound's conservative side,
* instrument selectors reach embedded canonical metrics blocks and
  respect label + block filters,
* a selector matching nothing is a *failed* verdict,
* ``diff_payloads`` flags only bad-direction moves past tolerance, with
  direction inferred from the metric name.
"""

import pytest

from repro.common.errors import ConfigError
from repro.metrics import MetricsRegistry, metrics_block
from repro.slo import (
    SLORule,
    SLOSpec,
    diff_payloads,
    evaluate,
    parse_tolerance,
    resolve_metric,
)


class TestSpecParsing:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[slo]]\nname = "p99"\nmetric = "latency.p99"\nmax = 45.0\n'
            '[[slo]]\nmetric = "hits"\nmin = 1\nagg = "sum"\n'
        )
        spec = SLOSpec.from_file(path)
        assert [rule.display_name for rule in spec.rules] == ["p99", "hits"]
        assert spec.rules[0].max == 45.0
        assert spec.rules[1].agg == "sum"

    def test_json_spec_also_loads(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"slo": [{"metric": "m", "min": 0.5}]}')
        assert SLOSpec.from_file(path).rules[0].min == 0.5

    @pytest.mark.parametrize(
        "data, match",
        [
            ({"metric": "m"}, "min.*or.*max"),
            ({"min": 1.0}, "metric"),
            ({"metric": "m", "min": 1.0, "agg": "median"}, "agg"),
            ({"metric": "m", "min": "fast"}, "number"),
            ({"metric": "m", "min": 1.0, "bogus": 1}, "unknown"),
        ],
    )
    def test_bad_rules_rejected(self, data, match):
        with pytest.raises(ConfigError, match=match):
            SLORule.from_data(data)

    def test_empty_rule_list_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            SLOSpec.from_data({"slo": []})


class TestResolveAndEvaluate:
    PAYLOAD = {
        "report": {"latency": {"p99": 7.0}},
        "points": [
            {"result": {"report": {"latency": {"p99": 3.0}}}},
            {"result": {"report": {"latency": {"p99": 9.0}}}},
        ],
    }

    def test_direct_path_wins_over_points(self):
        rule = SLORule(metric="report.latency.p99", max=10.0)
        assert resolve_metric(self.PAYLOAD, rule) == [
            ("report.latency.p99", 7.0)
        ]

    def test_sweep_points_fan_out(self):
        points = {"points": self.PAYLOAD["points"]}
        rule = SLORule(metric="report.latency.p99", max=10.0)
        assert [v for _w, v in resolve_metric(points, rule)] == [3.0, 9.0]

    def test_worst_resolves_per_bound(self):
        points = {"points": self.PAYLOAD["points"]}
        upper = evaluate(SLORule(metric="report.latency.p99", max=5.0), points)
        assert upper[0].agg == "max" and upper[0].value == 9.0
        assert not upper[0].ok
        lower = evaluate(SLORule(metric="report.latency.p99", min=1.0), points)
        assert lower[0].agg == "min" and lower[0].value == 3.0
        assert lower[0].ok

    def test_both_bounds_yield_two_verdicts(self):
        verdicts = evaluate(
            SLORule(metric="report.latency.p99", min=1.0, max=5.0),
            {"points": self.PAYLOAD["points"]},
        )
        assert [v.bound for v in verdicts] == ["min", "max"]
        assert [v.ok for v in verdicts] == [True, False]

    def test_missing_metric_is_a_failed_verdict(self):
        verdicts = evaluate(SLORule(metric="gone", min=1.0), self.PAYLOAD)
        assert len(verdicts) == 1
        assert not verdicts[0].ok
        assert verdicts[0].n == 0 and verdicts[0].value is None

    def _block_payload(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "Hits", labels=("node",))
        reg.family("hits_total").labels(node="c0").inc(3)
        reg.family("hits_total").labels(node="c1").inc(5)
        return {
            "report": {
                "squirrel": {"metrics": metrics_block(reg)},
            }
        }

    def test_instrument_selector_sums_samples(self):
        payload = self._block_payload()
        verdicts = evaluate(
            SLORule(metric="hits_total", agg="sum", min=8.0), payload
        )
        assert verdicts[0].ok and verdicts[0].value == 8.0
        assert verdicts[0].n == 2

    def test_instrument_label_filter(self):
        payload = self._block_payload()
        rule = SLORule(metric="hits_total{node=c1}", min=4.0)
        matches = resolve_metric(payload, rule)
        assert [v for _w, v in matches] == [5.0]

    def test_block_filter_skips_other_sides(self):
        payload = self._block_payload()
        rule = SLORule(metric="hits_total", block="baseline", min=1.0)
        assert resolve_metric(payload, rule) == []


class TestDiff:
    def test_parse_tolerance_forms(self):
        assert parse_tolerance("5%") == pytest.approx(0.05)
        assert parse_tolerance("0.25") == 0.25
        assert parse_tolerance(0.1) == 0.1
        with pytest.raises(ConfigError):
            parse_tolerance("lots")
        with pytest.raises(ConfigError):
            parse_tolerance("-1%")

    def test_directions_drive_regression_flags(self):
        old = {"events_per_s": 100.0, "elapsed_s": 1.0, "n_vms": 10}
        new = {"events_per_s": 50.0, "elapsed_s": 2.0, "n_vms": 20}
        entries = {e.path: e for e in diff_payloads(old, new, tolerance=0.1)}
        assert entries["events_per_s"].regression  # throughput halved
        assert entries["elapsed_s"].regression  # wall time doubled
        assert not entries["n_vms"].regression  # neutral: informational
        assert entries["n_vms"].direction == "neutral"

    def test_hit_rate_and_ratio_are_higher_better(self):
        old = {"victim": {"hit_rate": 0.8}, "pool": {"dedup_ratio": 3.0}}
        new = {"victim": {"hit_rate": 0.4}, "pool": {"dedup_ratio": 1.5}}
        entries = {e.path: e for e in diff_payloads(old, new, tolerance=0.1)}
        assert entries["victim.hit_rate"].direction == "higher"
        assert entries["victim.hit_rate"].regression  # isolation halved
        assert entries["pool.dedup_ratio"].direction == "higher"
        assert entries["pool.dedup_ratio"].regression
        # and the inverse move is an improvement, not a regression
        gains = {e.path: e for e in diff_payloads(new, old, tolerance=0.1)}
        assert gains["victim.hit_rate"].improvement
        assert gains["pool.dedup_ratio"].improvement

    def test_improvements_are_not_regressions(self):
        old = {"events_per_s": 100.0, "rss_bytes": 1000.0}
        new = {"events_per_s": 200.0, "rss_bytes": 500.0}
        entries = diff_payloads(old, new, tolerance=0.1)
        assert entries and all(e.improvement for e in entries)

    def test_within_tolerance_is_silent(self):
        old = {"events_per_s": 100.0}
        assert diff_payloads(old, {"events_per_s": 104.0}, tolerance=0.05) == []

    def test_one_sided_paths_are_ignored(self):
        old = {"events_per_s": 100.0}
        new = {"events_per_s": 100.0, "new_metric_s": 9.0}
        assert diff_payloads(old, new, tolerance=0.01) == []

    def test_metric_filter_limits_scope(self):
        old = {"a_per_s": 100.0, "b_per_s": 100.0}
        new = {"a_per_s": 10.0, "b_per_s": 10.0}
        entries = diff_payloads(old, new, tolerance=0.1, metrics=["a_per_s"])
        assert [e.path for e in entries] == ["a_per_s"]

    def test_regressions_sort_first(self):
        old = {"z_per_s": 100.0, "a_latency": 1.0}
        new = {"z_per_s": 10.0, "a_latency": 0.1}
        entries = diff_payloads(old, new, tolerance=0.1)
        assert entries[0].path == "z_per_s" and entries[0].regression
