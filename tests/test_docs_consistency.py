"""Documentation/consistency checks: the repo keeps its promises.

DESIGN.md's experiment index, the benchmark files, and the CLI registry must
stay in sync — a reproduction whose map doesn't match its territory is worse
than none.
"""

import pathlib
import re

REPO = pathlib.Path(__file__).parent.parent

PAPER_ARTIFACTS = [
    "fig02", "fig03", "fig04", "fig08", "fig09", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "tab01", "tab02",
]


class TestBenchCoverage:
    def test_every_artifact_has_a_bench_file(self):
        bench_names = {p.stem for p in (REPO / "benchmarks").glob("bench_*.py")}
        for artifact in PAPER_ARTIFACTS:
            assert any(
                artifact in name for name in bench_names
            ), f"no bench for {artifact}"

    def test_design_md_mentions_every_bench_target(self):
        design = (REPO / "DESIGN.md").read_text()
        for artifact in PAPER_ARTIFACTS:
            number = int(artifact[3:])
            kind = "Fig" if artifact.startswith("fig") else "Tab"
            assert re.search(
                rf"{kind} {number}\b", design
            ), f"DESIGN.md lacks the {kind} {number} row"

    def test_design_md_has_substitution_map(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "Substitutions" in design
        for substrate in ("ZFS", "QCOW2", "glusterfs", "DAS-4"):
            assert substrate in design

    def test_readme_points_at_the_deliverables(self):
        readme = (REPO / "README.md").read_text()
        for path in ("DESIGN.md", "EXPERIMENTS.md", "examples/quickstart.py"):
            assert path in readme

    def test_examples_exist_and_are_runnable_scripts(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        for example in examples:
            text = example.read_text()
            assert '__main__' in text, f"{example.name} is not runnable"
            assert '"""' in text, f"{example.name} lacks a docstring"
