"""Unit tests for curve fitting and the model-selection protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    FittedCurve,
    fit_hoerl,
    fit_linear,
    fit_mmf,
    rmse,
    select_best_curve,
)
from repro.common.errors import FitError


class TestLinear:
    def test_recovers_exact_line(self):
        x = np.arange(1, 50, dtype=float)
        y = 3.0 + 0.5 * x
        fit = fit_linear(x, y)
        assert fit.params[0] == pytest.approx(3.0)
        assert fit.params[1] == pytest.approx(0.5)
        assert rmse(fit, x, y) < 1e-9

    def test_needs_two_points(self):
        with pytest.raises(FitError):
            fit_linear([1.0], [2.0])

    def test_predict_scalar(self):
        fit = fit_linear([0, 1], [0, 2])
        assert float(fit.predict(10.0)) == pytest.approx(20.0)


class TestMmf:
    def test_recovers_mmf_shape(self):
        x = np.arange(1, 200, dtype=float)
        true = (1.0 * 50 + 20.0 * x**1.2) / (50 + x**1.2)
        fit = fit_mmf(x, true)
        assert rmse(fit, x, true) < 0.1

    def test_saturating_data_prefers_mmf_over_linear(self):
        x = np.arange(1, 300, dtype=float)
        y = 100 * x / (x + 40)  # saturating
        mmf = fit_mmf(x, y)
        lin = fit_linear(x, y)
        assert rmse(mmf, x, y) < rmse(lin, x, y)

    def test_needs_five_points(self):
        with pytest.raises(FitError):
            fit_mmf([1, 2, 3], [1, 2, 3])


class TestHoerl:
    def test_recovers_hoerl_shape(self):
        x = np.arange(1, 100, dtype=float)
        y = 2.0 * (1.002**x) * x**0.7
        fit = fit_hoerl(x, y)
        assert rmse(fit, x, y) / y.mean() < 0.02

    def test_rejects_nonpositive(self):
        with pytest.raises(FitError):
            fit_hoerl([1, 2, 3], [1.0, -2.0, 3.0])

    def test_no_overflow_for_large_x(self):
        x = np.arange(1, 600, dtype=float)
        y = 0.03 * x + 1.0
        fit = fit_hoerl(x, y)
        assert np.isfinite(fit.predict(3000.0))


class TestSelection:
    def test_linear_wins_on_linear_data(self):
        """Table 3's situation: disk consumption is linear in cache count."""
        rng = np.random.default_rng(1)
        x = np.arange(1, 400, dtype=float)
        y = 2.0 + 0.03 * x + rng.normal(0, 0.02, x.size)
        selection = select_best_curve(x, y)
        assert selection.winner_name == "linear"

    def test_mmf_wins_on_saturating_data(self):
        """Table 4's situation: memory consumption saturates."""
        rng = np.random.default_rng(2)
        x = np.arange(1, 400, dtype=float)
        y = 120 * x / (x + 60) + rng.normal(0, 0.3, x.size)
        selection = select_best_curve(x, y)
        assert selection.winner_name == "MMF"

    def test_all_candidates_scored(self):
        x = np.arange(1, 100, dtype=float)
        y = 1.0 + 0.1 * x
        selection = select_best_curve(x, y)
        assert set(selection.rmse_all) == {"linear", "MMF", "hoerl"}

    def test_winner_refit_on_all_points(self):
        """Step 4 of the protocol: the winner must fit all points better
        than its train-on-half version (barring degenerate ties)."""
        rng = np.random.default_rng(3)
        x = np.arange(1, 200, dtype=float)
        y = 5 + 0.2 * x + rng.normal(0, 1.0, x.size)
        selection = select_best_curve(x, y)
        refit_err = rmse(selection.winner, x, y)
        half_err = rmse(selection.half_fits[selection.winner_name], x, y)
        assert refit_err <= half_err + 1e-9

    @given(
        slope=st.floats(0.01, 10.0),
        intercept=st.floats(0.0, 100.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_linear_exact_recovery(self, slope, intercept):
        x = np.arange(1, 60, dtype=float)
        y = intercept + slope * x
        fit = fit_linear(x, y)
        assert rmse(fit, x, y) < 1e-6 * max(1.0, y.max())


class TestFittedCurve:
    def test_vector_prediction(self):
        fit = FittedCurve("linear", (1.0, 2.0), lambda x, a, b: a + b * x)
        out = fit.predict(np.array([0.0, 1.0, 2.0]))
        assert np.allclose(out, [1.0, 3.0, 5.0])
