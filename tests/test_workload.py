"""Tests for the multi-tenant workload engine: tenants, arrivals, scenarios."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import stream as rng_stream
from repro.workload import (
    DAY_S,
    ChurnConfig,
    DayConfig,
    StormConfig,
    TenantPopulation,
    boot_storm,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
    register_churn,
    steady_state_day,
)


class TestTenantPopulation:
    def test_weights_normalised(self):
        pop = TenantPopulation(12, 50, seed=1)
        assert sum(t.weight for t in pop.tenants) == pytest.approx(1.0)

    def test_each_tenant_has_a_full_permutation(self):
        pop = TenantPopulation(4, 30, seed=2)
        for tenant in pop.tenants:
            assert sorted(tenant.image_order) == list(range(30))

    def test_same_seed_same_population(self):
        a = TenantPopulation(8, 40, seed=5)
        b = TenantPopulation(8, 40, seed=5)
        for ta, tb in zip(a.tenants, b.tenants):
            assert ta.weight == tb.weight
            assert (ta.image_order == tb.image_order).all()

    def test_aggregate_popularity_is_skewed(self):
        """A few images dominate: the head of the distribution carries far
        more mass than a uniform draw would give it."""
        pop = TenantPopulation(6, 100, seed=3, zipf_exponent=1.0)
        freq = np.sort(pop.aggregate_popularity(4000, seed=3))[::-1]
        assert freq.sum() == pytest.approx(1.0)
        assert freq[:10].sum() > 3.0 * (10 / 100)

    def test_sampling_is_deterministic_per_stream(self):
        pop = TenantPopulation(8, 40, seed=5)
        draws_a = [pop.sample(rng_stream("t", 9))[1] for _ in range(1)]
        draws_b = [pop.sample(rng_stream("t", 9))[1] for _ in range(1)]
        assert draws_a == draws_b

    def test_rejects_empty_population(self):
        with pytest.raises(ConfigError):
            TenantPopulation(0, 10)


class TestArrivals:
    def test_poisson_sorted_and_bounded(self):
        times = poisson_arrivals(rng_stream("p", 0), rate_per_s=2.0, horizon_s=100.0)
        assert (np.diff(times) >= 0).all()
        assert times[0] >= 0.0 and times[-1] < 100.0
        # within 5 sigma of the expected 200
        assert 200 - 5 * np.sqrt(200) < len(times) < 200 + 5 * np.sqrt(200)

    def test_diurnal_peaks_where_told(self):
        times = diurnal_arrivals(
            rng_stream("d", 0),
            mean_rate_per_s=4000.0 / DAY_S,
            horizon_s=DAY_S,
            peak_to_trough=8.0,
            peak_time_s=DAY_S / 2,
        )
        hours = (times / 3600.0).astype(int)
        by_hour = np.bincount(hours, minlength=24)
        # busiest hour is near the configured peak (noon), quietest near
        # midnight, and the configured contrast shows up in the counts
        assert abs(int(np.argmax(by_hour)) - 12) <= 3
        assert by_hour[11:14].sum() > 2.5 * max(1, by_hour[[0, 1, 23]].sum())

    def test_flash_crowd_fits_the_ramp(self):
        times = flash_crowd_arrivals(rng_stream("f", 1), n_vms=64, ramp_s=30.0)
        assert len(times) == 64
        assert (np.diff(times) >= 0).all()
        assert times[-1] < 30.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(rng_stream("x", 0), rate_per_s=0.0, horizon_s=1.0)
        with pytest.raises(ConfigError):
            diurnal_arrivals(
                rng_stream("x", 0),
                mean_rate_per_s=1.0,
                horizon_s=10.0,
                peak_to_trough=0.5,
            )


SMALL_STORM = StormConfig(n_nodes=4, vms_per_node=2, ramp_s=10.0, scale=1 / 1024)


class TestBootStorm:
    def test_squirrel_side_is_all_local(self):
        report = boot_storm(SMALL_STORM)
        assert report.squirrel.boots == 8
        assert report.squirrel.cache_hits == 8
        assert report.squirrel.compute_ingress_bytes == 0

    def test_baseline_pays_the_network(self):
        report = boot_storm(SMALL_STORM)
        assert report.baseline.cache_hits == 0
        assert report.baseline.compute_ingress_bytes > 0
        assert report.baseline.latency.p50 > report.squirrel.latency.p50

    def test_latency_ladder_is_ordered(self):
        report = boot_storm(SMALL_STORM)
        for side in (report.squirrel, report.baseline):
            stats = side.latency
            assert 0.0 < stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
            assert side.horizon_s >= stats.maximum

    def test_rejects_empty_storm(self):
        with pytest.raises(ConfigError):
            boot_storm(StormConfig(n_nodes=0))


class TestScenarios:
    def test_steady_state_day_boots_and_registers(self):
        report = steady_state_day(
            DayConfig(
                n_nodes=4,
                n_boots=40,
                n_initial_images=8,
                n_new_registrations=2,
                scale=1 / 1024,
            )
        )
        assert report.boots > 0
        assert report.cache_hits > 0
        assert report.registrations == 2
        assert report.register_latency.count == 2
        # every boot either hit a cache or cold-fetched through the FS;
        # nothing times out or disappears
        assert report.boot_latency.count == report.boots

    def test_register_churn_resyncs_offline_nodes(self):
        report = register_churn(
            ChurnConfig(
                n_nodes=4,
                horizon_days=3.0,
                registrations_per_day=4.0,
                downtimes_per_node=1.5,
                mean_downtime_days=0.3,
                scale=1 / 1024,
            )
        )
        assert report.registrations > 0
        assert report.resyncs == report.incremental_resyncs + report.full_replications
        # every downtime window ends in a catch-up attempt; some find
        # nothing to ship (no registrations while down) and move no bytes
        assert report.resync_latency.count >= report.resyncs
