"""Property-based tests: the simulation is a pure function of its seed.

The event engine's contract is bit-level reproducibility — same seed, same
total event order, same Timeline, regardless of Python hash salt or dict
insertion accidents. Different seeds must actually differ (same-instant ties
are broken by a seeded draw, not left to scheduling order).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import stream as rng_stream
from repro.sim import Engine, Pipe, Resource
from repro.workload import StormConfig, boot_storm, flash_crowd_arrivals

SMALL_STORM = dict(n_nodes=4, vms_per_node=2, ramp_s=10.0, scale=1 / 1024)


def crowded_trace(seed: int) -> list[tuple[float, str]]:
    """A contended mini-cluster: one pipe, one resource, colliding instants."""
    engine = Engine(seed=seed, trace=True)
    pipe = Pipe(engine, 1000.0, name="link")
    cores = Resource(engine, capacity=2, name="cores")

    def vm(i):
        yield engine.timeout(float(i % 3), label=f"arrive:{i}")
        yield pipe.transfer(500, label=f"fetch:{i}")
        yield cores.request()
        yield engine.timeout(1.0, label=f"decompress:{i}")
        cores.release()

    for i in range(12):
        engine.process(vm(i), label=f"vm:{i}")
    engine.run()
    return engine.trace


class TestEngineDeterminismProperty:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_bit_identical_event_order(self, seed):
        assert crowded_trace(seed) == crowded_trace(seed)

    @given(seed=st.integers(0, 2**16 - 1))
    @settings(max_examples=10, deadline=None)
    def test_neighbouring_seeds_break_ties_differently(self, seed):
        assert crowded_trace(seed) != crowded_trace(seed + 1)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_arrival_traces_differ_across_seeds(self, seed):
        a = flash_crowd_arrivals(rng_stream("storm", seed), n_vms=32, ramp_s=30.0)
        b = flash_crowd_arrivals(rng_stream("storm", seed + 1), n_vms=32, ramp_s=30.0)
        assert list(a) != list(b)


class TestStormDeterminism:
    def test_same_seed_identical_timeline(self):
        """Two fresh rigs, same seed: every counter, gauge sample and
        histogram percentile matches exactly — on both sides."""
        first = boot_storm(StormConfig(seed=11, **SMALL_STORM))
        second = boot_storm(StormConfig(seed=11, **SMALL_STORM))
        assert first.squirrel.summary == second.squirrel.summary
        assert first.baseline.summary == second.baseline.summary
        assert first.squirrel.horizon_s == second.squirrel.horizon_s

    def test_different_seeds_different_storms(self):
        first = boot_storm(StormConfig(seed=11, **SMALL_STORM))
        second = boot_storm(StormConfig(seed=12, **SMALL_STORM))
        assert first.squirrel.summary != second.squirrel.summary


class TestLazyCatalogEquivalence:
    """The lazy catalog must be invisible in results: a storm, a placement
    run, and a figure experiment fed an eager dataset, a lazy catalog, or
    the default (internally lazy) path serialise byte-identically."""

    def test_storm_lazy_equals_eager_equals_default(self):
        from repro.common.report import dumps_canonical
        from repro.vmi import AzureCommunityDataset, DatasetConfig, LazyImageCatalog

        config = StormConfig(seed=5, **SMALL_STORM)
        eager = AzureCommunityDataset(DatasetConfig(scale=config.scale))
        lazy = LazyImageCatalog(DatasetConfig(scale=config.scale))
        reports = [
            boot_storm(config, dataset=eager),
            boot_storm(config, dataset=lazy),
            boot_storm(config),
        ]
        payloads = [dumps_canonical(r.to_dict()) for r in reports]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_placement_storm_lazy_equals_eager_context(self):
        from repro.common.report import dumps_canonical
        from repro.experiments import ExperimentConfig, ExperimentContext
        from repro.experiments import placement_storm

        kwargs = dict(
            nodes=4, vms_per_node=2, seed=7, policy="top_k", top_k=2
        )
        a = placement_storm.run(ctx=ExperimentContext(ExperimentConfig()), **kwargs)
        b = placement_storm.run(ctx=ExperimentContext(ExperimentConfig()), **kwargs)
        assert dumps_canonical(a.to_dict()) == dumps_canonical(b.to_dict())

    def test_figure_metrics_lazy_equals_inline_synthesis(self):
        from repro.analysis import dataset_metrics
        from repro.experiments import ExperimentConfig, ExperimentContext
        from repro.vmi import (
            AzureCommunityDataset,
            DatasetConfig,
            block_view,
            cache_stream,
        )

        scale = 1 / 2048
        ctx = ExperimentContext(ExperimentConfig(scale=scale, quick=4,
                                                 calibration_samples=2))
        lazy = ctx.metrics("caches", 65536)
        eager = AzureCommunityDataset(DatasetConfig(scale=scale))
        views = [
            block_view(cache_stream(spec), 65536)
            for spec in eager.images[::4]
        ]
        inline = dataset_metrics(views, ctx.estimator("gzip6", (65536,)))
        assert lazy == inline
