"""Property-based tests: the simulation is a pure function of its seed.

The event engine's contract is bit-level reproducibility — same seed, same
total event order, same Timeline, regardless of Python hash salt or dict
insertion accidents. Different seeds must actually differ (same-instant ties
are broken by a seeded draw, not left to scheduling order).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import stream as rng_stream
from repro.sim import Engine, Pipe, Resource
from repro.workload import StormConfig, boot_storm, flash_crowd_arrivals

SMALL_STORM = dict(n_nodes=4, vms_per_node=2, ramp_s=10.0, scale=1 / 1024)


def crowded_trace(seed: int) -> list[tuple[float, str]]:
    """A contended mini-cluster: one pipe, one resource, colliding instants."""
    engine = Engine(seed=seed, trace=True)
    pipe = Pipe(engine, 1000.0, name="link")
    cores = Resource(engine, capacity=2, name="cores")

    def vm(i):
        yield engine.timeout(float(i % 3), label=f"arrive:{i}")
        yield pipe.transfer(500, label=f"fetch:{i}")
        yield cores.request()
        yield engine.timeout(1.0, label=f"decompress:{i}")
        cores.release()

    for i in range(12):
        engine.process(vm(i), label=f"vm:{i}")
    engine.run()
    return engine.trace


class TestEngineDeterminismProperty:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_bit_identical_event_order(self, seed):
        assert crowded_trace(seed) == crowded_trace(seed)

    @given(seed=st.integers(0, 2**16 - 1))
    @settings(max_examples=10, deadline=None)
    def test_neighbouring_seeds_break_ties_differently(self, seed):
        assert crowded_trace(seed) != crowded_trace(seed + 1)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_arrival_traces_differ_across_seeds(self, seed):
        a = flash_crowd_arrivals(rng_stream("storm", seed), n_vms=32, ramp_s=30.0)
        b = flash_crowd_arrivals(rng_stream("storm", seed + 1), n_vms=32, ramp_s=30.0)
        assert list(a) != list(b)


class TestStormDeterminism:
    def test_same_seed_identical_timeline(self):
        """Two fresh rigs, same seed: every counter, gauge sample and
        histogram percentile matches exactly — on both sides."""
        first = boot_storm(StormConfig(seed=11, **SMALL_STORM))
        second = boot_storm(StormConfig(seed=11, **SMALL_STORM))
        assert first.squirrel.summary == second.squirrel.summary
        assert first.baseline.summary == second.baseline.summary
        assert first.squirrel.horizon_s == second.squirrel.horizon_s

    def test_different_seeds_different_storms(self):
        first = boot_storm(StormConfig(seed=11, **SMALL_STORM))
        second = boot_storm(StormConfig(seed=12, **SMALL_STORM))
        assert first.squirrel.summary != second.squirrel.summary
