"""Tests for the declarative params layer and the multiprocess sweep runner.

The contracts under test are the ones the CLI advertises: typed parameter
validation happens before anything runs, grid expansion is deterministic,
per-point derived seeds never collide across grid axes, ``--workers N``
output is byte-identical to ``--workers 1``, and an interrupted sweep
resumed from its manifest completes only the missing points.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.common.report import dumps_canonical
from repro.experiments import registry
from repro.experiments.params import ParamSpec, parse_bool, validate_params
from repro.sweep import SweepSpec, load_manifest, parse_grid, run_sweep
from repro.sweep.summary import render_sweep

#: a storm sweep small enough for unit tests (two boots per point)
TINY = {"vms_per_node": 1}


class TestParamSpec:
    def test_parse_typed(self):
        assert ParamSpec("n", int, 0).parse("16") == 16
        assert ParamSpec("x", float, 0.0).parse("1.5") == 1.5
        assert ParamSpec("s", str, "").parse("abc") == "abc"
        assert ParamSpec("b", bool, False).parse("true") is True

    def test_parse_bool_tokens(self):
        assert parse_bool("YES") and parse_bool("1") and parse_bool("on")
        assert not (parse_bool("no") or parse_bool("0") or parse_bool("off"))
        with pytest.raises(ConfigError):
            parse_bool("maybe")

    def test_parse_rejects_bad_token(self):
        with pytest.raises(ConfigError, match="cannot parse"):
            ParamSpec("n", int, 0).parse("sixteen")

    def test_coerce_rejects_bool_as_int(self):
        with pytest.raises(ConfigError):
            ParamSpec("n", int, 0).coerce(True)

    def test_choices_enforced(self):
        spec = ParamSpec("fabric", str, "a", choices=("a", "b"))
        with pytest.raises(ConfigError, match="not in"):
            spec.coerce("c")

    def test_check_hook_runs(self):
        def refuse(value):
            raise ConfigError("nope")

        with pytest.raises(ConfigError, match="nope"):
            ParamSpec("s", str, None, check=refuse).coerce("x")

    def test_flag_derivation(self):
        assert ParamSpec("vms_per_node", int, 8).flag == "--vms-per-node"

    def test_validate_fills_defaults_and_rejects_unknown(self):
        specs = (ParamSpec("a", int, 1), ParamSpec("b", str, None))
        assert validate_params(specs, {"a": 3}) == {"a": 3, "b": None}
        with pytest.raises(ConfigError, match="does not accept"):
            validate_params(specs, {"c": 1})


class TestRegistryParams:
    def test_storm_declares_typed_params(self):
        exp = registry.get("storm")
        names = [spec.name for spec in exp.params]
        assert names == [
            "nodes", "vms_per_node", "seed", "faults", "trace", "metrics",
        ]
        assert exp.param("nodes").gridable
        assert not exp.param("trace").gridable

    def test_no_experiment_touches_argparse(self):
        """Param flow is declarative: no run module imports argparse."""
        import importlib
        import pkgutil

        import repro.experiments as package

        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"repro.experiments.{info.name}")
            assert not hasattr(module, "argparse"), module.__name__

    def test_validate_routes_through_specs(self):
        exp = registry.get("recovery")
        params = exp.validate({"nodes": 4})
        assert params["nodes"] == 4
        # recovery's declared default fault plan survives validation
        assert params["faults"] is not None and "crash:" in params["faults"]

    def test_bad_fault_plan_rejected_at_validation(self):
        with pytest.raises(ConfigError, match="bad fault spec"):
            registry.get("storm").validate({"faults": "explode:x@1+1"})

    def test_render_fallback_without_module_render_is_config_error(self):
        from repro.experiments.registry import Experiment

        def run(ctx=None):
            return None

        # this test module has no render(); the fallback must say so
        run.__module__ = __name__
        exp = Experiment(exp_id="ghost", title="t", run=run)
        with pytest.raises(ConfigError) as excinfo:
            exp.render(object())
        assert "ghost" in str(excinfo.value)
        assert __name__ in str(excinfo.value)


class TestDefaultContextEnv:
    def test_env_changes_are_honoured(self, monkeypatch):
        from repro.experiments.context import default_context

        monkeypatch.setenv("REPRO_SCALE", "2048")
        monkeypatch.setenv("REPRO_QUICK", "8")
        first = default_context()
        assert first.config.scale == 1 / 2048
        assert first.config.quick == 8
        # same env -> same memoised context
        assert default_context() is first
        # edited env -> a matching new context, not the frozen first one
        monkeypatch.setenv("REPRO_SCALE", "4096")
        second = default_context()
        assert second is not first
        assert second.config.scale == 1 / 4096


class TestGridParsing:
    def test_values_and_ranges(self):
        grid = parse_grid("storm", "nodes=16,32 seed=0..3")
        assert grid == {"nodes": (16, 32), "seed": (0, 1, 2, 3)}

    def test_values_are_typed(self):
        grid = parse_grid("fig18", "fabric=32GbIB,1GbE")
        assert grid == {"fabric": ("32GbIB", "1GbE")}

    def test_non_gridable_axis_rejected(self):
        with pytest.raises(ConfigError, match="not gridable"):
            parse_grid("storm", "trace=a,b")

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="no parameter"):
            parse_grid("storm", "warp=1,2")

    def test_malformed_axis_rejected(self):
        with pytest.raises(ConfigError, match="bad grid axis"):
            parse_grid("storm", "nodes")

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigError, match="empty range"):
            parse_grid("storm", "seed=3..1")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigError, match="twice"):
            parse_grid("storm", "seed=0 seed=1")


class TestSweepSpec:
    def test_expansion_is_declaration_ordered_row_major(self):
        # grid typed seed-first: expansion still iterates nodes (declared
        # first) as the slow axis
        spec = SweepSpec.from_grid("storm", "seed=0,1 nodes=2,4", TINY)
        combos = [
            (p.requested["nodes"], p.requested["seed"]) for p in spec.expand()
        ]
        assert combos == [(2, 0), (2, 1), (4, 0), (4, 1)]
        assert [p.index for p in spec.expand()] == [0, 1, 2, 3]

    def test_expansion_is_stable(self):
        spec = SweepSpec.from_grid("storm", "nodes=2,4 seed=0..1", TINY)
        assert [p.key for p in spec.expand()] == [p.key for p in spec.expand()]

    def test_derived_seeds_do_not_collide_across_axes(self):
        """(nodes=2, seed=0) and (nodes=4, seed=0) must not share a seed —
        nor any other pair in the grid."""
        spec = SweepSpec.from_grid("storm", "nodes=2,4,8 seed=0..4", TINY)
        points = spec.expand()
        seeds = {p.derived_seed for p in points}
        assert len(seeds) == len(points)
        assert all(p.params["seed"] == p.derived_seed for p in points)

    def test_derived_seed_only_when_declared(self):
        spec = SweepSpec("fig18", {"fabric": ["32GbIB"]})
        (point,) = spec.expand()
        assert point.derived_seed is None
        assert "seed" not in point.params

    def test_fixed_and_grid_overlap_rejected(self):
        with pytest.raises(ConfigError, match="both"):
            SweepSpec("storm", {"seed": [0]}, {"seed": 1})

    def test_aliases_canonicalised(self):
        spec = SweepSpec("tab03", {})
        assert spec.experiment == "fig14"

    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'experiment = "storm"\n'
            "seeds = [0, 1]\n"
            "[grid]\nnodes = [2, 4]\n"
            "[params]\nvms_per_node = 1\n"
        )
        spec = SweepSpec.from_file(path)
        assert spec.grid == {"nodes": (2, 4), "seed": (0, 1)}
        assert spec.fixed == {"vms_per_node": 1}

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                {
                    "experiment": "storm",
                    "grid": {"seed": [0, 1]},
                    "params": {"vms_per_node": 1},
                }
            )
        )
        spec = SweepSpec.from_file(path)
        assert spec.grid == {"seed": (0, 1)}

    def test_file_without_experiment_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{}")
        with pytest.raises(ConfigError, match="experiment"):
            SweepSpec.from_file(path)


def _tiny_spec(grid="nodes=2 seed=0,1"):
    return SweepSpec.from_grid("storm", grid, TINY)


class TestRunner:
    def test_serial_vs_parallel_byte_identical(self):
        serial = run_sweep(_tiny_spec(), workers=1, scale=4096.0)
        parallel = run_sweep(_tiny_spec(), workers=2, scale=4096.0)
        assert dumps_canonical(serial.to_dict()) == dumps_canonical(
            parallel.to_dict()
        )

    def test_points_in_expansion_order(self):
        result = run_sweep(_tiny_spec("nodes=2,4 seed=0"), workers=2, scale=4096.0)
        assert [p["params"]["nodes"] for p in result.points] == [2, 4]

    def test_summary_aggregates_across_seeds(self):
        result = run_sweep(_tiny_spec(), workers=1, scale=4096.0)
        metric = "report.squirrel.latency.p50"
        assert metric in result.summary
        group = result.summary[metric]["nodes=2"]
        assert group["n"] == 2
        assert group["p50"] > 0

    def test_manifest_resume_runs_only_missing_points(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        spec = _tiny_spec("nodes=2 seed=0..2")
        full = run_sweep(spec, workers=1, manifest_path=str(manifest), scale=4096.0)
        lines = manifest.read_text().splitlines()
        assert len(lines) == 3
        # simulate a mid-run kill: keep two completed points + a torn line
        manifest.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
        ran = []
        resumed = run_sweep(
            spec,
            workers=1,
            manifest_path=str(manifest),
            resume=True,
            scale=4096.0,
            progress=lambda point, status, elapsed: ran.append(
                (point.requested["seed"], status)
            ),
        )
        statuses = dict(ran)
        assert statuses == {0: "cached", 1: "cached", 2: "run"}
        assert dumps_canonical(resumed.to_dict()) == dumps_canonical(
            full.to_dict()
        )
        # the manifest is now complete again
        assert len(load_manifest(str(manifest), "storm")) == 3

    def test_resume_rejects_foreign_manifest(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        manifest.write_text(
            dumps_canonical(
                {"experiment": "fig18", "key": "{}", "index": 0, "result": {}}
            )
            + "\n"
        )
        with pytest.raises(ConfigError, match="fig18"):
            load_manifest(str(manifest), "storm")

    def test_resume_without_manifest_rejected(self):
        with pytest.raises(ConfigError, match="manifest"):
            run_sweep(_tiny_spec(), resume=True)

    def test_render_sweep_has_points_and_aggregates(self):
        result = run_sweep(_tiny_spec(), workers=1, scale=4096.0)
        text = render_sweep(result, metrics=registry.get("storm").metrics)
        assert "2 points" in text
        assert "squirrel.latency.p50" in text
        assert "aggregates across seeds" in text


class TestSweepCli:
    def test_cli_serial_vs_parallel_byte_identical(self, capsys):
        from repro.__main__ import main

        argv = [
            "sweep", "storm", "--grid", "nodes=2 seed=0,1",
            "--set", "vms_per_node=1", "--json",
        ]
        assert main(argv + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        payload = json.loads(serial)
        assert payload["experiment"] == "storm"
        assert len(payload["points"]) == 2
        assert [p["params"]["seed"] for p in payload["points"]] == [0, 1]

    def test_cli_resume(self, tmp_path, capsys):
        from repro.__main__ import main

        manifest = tmp_path / "m.jsonl"
        argv = [
            "sweep", "storm", "--grid", "nodes=2 seed=0,1",
            "--set", "vms_per_node=1", "--json",
        ]
        assert main(argv + ["--manifest", str(manifest)]) == 0
        full = capsys.readouterr().out
        lines = manifest.read_text().splitlines()
        manifest.write_text("\n".join(lines[:1]) + "\n")
        assert main(argv + ["--resume", str(manifest)]) == 0
        captured = capsys.readouterr()
        assert captured.out == full
        assert captured.err.count("resumed") == 1

    def test_cli_requires_grid_or_spec(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["sweep", "storm"])

    def test_cli_spec_file(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "sweep.toml"
        path.write_text(
            'experiment = "storm"\nseeds = [0]\n'
            "[params]\nvms_per_node = 1\nnodes = 2\n"
        )
        assert main(["sweep", "--spec", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["points"]) == 1


class TestUpFrontValidation:
    def test_all_validates_before_running_anything(self, capsys):
        """A bad option for a late experiment must fail before the first
        experiment runs — no timing lines on stderr, no partial output."""
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["all", "--json", "--fabric", "warp-drive"])
        captured = capsys.readouterr()
        assert "[" not in captured.out  # no partial results printed
        assert "fig02" not in captured.err  # no experiment ran

    def test_unknown_id_still_a_usage_error(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_single_experiment_rejects_undeclared_param(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig02", "--nodes", "4"])
        assert "does not accept" in capsys.readouterr().err


class TestRuntimeTrailer:
    """A profiled sweep appends a runtime trailer to the manifest; the
    trailer is telemetry only — resume and point bytes never see it."""

    def _profiled_sweep(self, manifest, spec, **kwargs):
        from repro.obs import runtime as obs_runtime

        profiler = obs_runtime.RuntimeProfiler()
        with obs_runtime.profiled(profiler):
            result = run_sweep(
                spec, workers=1, manifest_path=str(manifest),
                scale=4096.0, **kwargs,
            )
        return profiler, result

    def test_trailer_written_and_skipped_on_load(self, tmp_path):
        import json

        manifest = tmp_path / "sweep.jsonl"
        spec = _tiny_spec()
        profiler, _result = self._profiled_sweep(manifest, spec)
        lines = manifest.read_text().splitlines()
        assert len(lines) == 3  # 2 points + runtime trailer
        trailer = json.loads(lines[-1])
        assert trailer["manifest_version"] == 1
        assert trailer["runtime"]["schema"] == "repro.runtime/1"
        # one wall-time record per completed point made it into the block
        assert [p["label"] for p in trailer["runtime"]["points"]] == [
            "nodes=2 seed=0", "nodes=2 seed=1",
        ]
        assert len(load_manifest(str(manifest), "storm")) == 2

    def test_resume_over_trailer_replays_cleanly(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        spec = _tiny_spec()
        _profiler, full = self._profiled_sweep(manifest, spec)
        ran = []
        _again, resumed = self._profiled_sweep(
            manifest, spec, resume=True,
            progress=lambda point, status, elapsed: ran.append(status),
        )
        assert ran == ["cached", "cached"]
        assert dumps_canonical(resumed.to_dict()) == dumps_canonical(
            full.to_dict()
        )

    def test_unprofiled_sweep_writes_no_trailer(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        run_sweep(
            _tiny_spec(), workers=1, manifest_path=str(manifest), scale=4096.0
        )
        lines = manifest.read_text().splitlines()
        assert len(lines) == 2
        assert all("manifest_version" not in line for line in lines)
