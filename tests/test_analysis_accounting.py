"""Equivalence + unit tests for the vectorised pool accountant."""

import numpy as np
import pytest

from repro.analysis import PoolAccountant
from repro.vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    block_view,
    cache_stream,
    make_estimator,
)
from repro.zfs import ZPool


@pytest.fixture(scope="module")
def estimator():
    return make_estimator("gzip6", (65536,), samples_per_point=2)


@pytest.fixture(scope="module")
def views(estimator):
    dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 2048))
    return [block_view(cache_stream(spec), 65536) for spec in dataset.images[:40]]


class TestEquivalenceWithObjectPipeline:
    def test_matches_real_pool_exactly(self, estimator, views):
        """The accountant must agree with the ZIO/DDT object pipeline on
        DDT entries, allocated bytes, disk, and memory."""
        accountant = PoolAccountant(estimator)
        pool = ZPool(capacity=1 << 40, store_payloads=False)
        vol = pool.create_dataset("cc", record_size=65536, dedup=True)
        for index, view in enumerate(views):
            psizes = view.psizes(estimator)
            vol.write_file_virtual(
                f"f{index}",
                zip(
                    view.signatures.tolist(),
                    view.lsizes.tolist(),
                    psizes.tolist(),
                    view.is_hole.tolist(),
                ),
            )
            snap = accountant.add_view(view)
            assert snap.ddt_entries == pool.ddt.entry_count
            assert snap.data_bytes == pool.data_bytes
            assert snap.ddt_disk_bytes == pool.ddt.on_disk_bytes
            assert snap.memory_used_bytes == pool.ddt.in_core_bytes


class TestAccountantBehaviour:
    def test_duplicate_view_adds_no_data(self, estimator, views):
        accountant = PoolAccountant(estimator)
        first = accountant.add_view(views[0])
        second = accountant.add_view(views[0])
        assert second.data_bytes == first.data_bytes
        assert second.ddt_entries == first.ddt_entries
        assert second.files == 2

    def test_disjoint_views_add_linearly(self, estimator):
        accountant = PoolAccountant(estimator)
        a = block_view(np.asarray([(i << 3) | 2 for i in range(1, 65)],
                                  dtype=np.uint64), 65536)
        b = block_view(np.asarray([(i << 3) | 2 for i in range(100, 164)],
                                  dtype=np.uint64), 65536)
        snap_a = accountant.add_view(a)
        snap_ab = accountant.add_view(b)
        assert snap_ab.ddt_entries == 2 * snap_a.ddt_entries

    def test_holes_cost_nothing(self, estimator):
        accountant = PoolAccountant(estimator)
        holes = block_view(np.zeros(256, dtype=np.uint64), 65536)
        snap = accountant.add_view(holes)
        assert snap.data_bytes == 0
        assert snap.ddt_entries == 0

    def test_memory_zero_when_empty(self, estimator):
        accountant = PoolAccountant(estimator)
        assert accountant.snapshot().memory_used_bytes == 0
