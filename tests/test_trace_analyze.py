"""Trace analytics: critical-path extraction, flame export, trace diffing.

The contracts under test:

* the critical-path segments partition each boot exactly — per boot,
  ``critical_s + slack_s == latency`` (the chain twin of the attribution
  invariant), with deterministic last-finisher tie-breaking,
* the analyzer's wall buckets reconcile with the report's BootAttribution
  block on warm, cold and faulted runs,
* round-trip: parsing ``write_chrome_trace`` output reproduces the
  in-memory blame table byte-for-byte (all math happens in the chrome-µs
  float domain), and same-seed analyses are byte-identical — including
  through sweep stores built with different worker counts,
* ``trace diff`` aligns blame tables by span name, sorts the largest
  critical-seconds deltas first, and exit-1s on regression past tolerance,
* ``--trace`` is uniformly available on every registered experiment.
"""

import copy
import json

import pytest

from repro.common.report import dumps_canonical
from repro.obs import SpanTracer, dump_chrome_trace
from repro.obs.analyze import (
    TIERS,
    analyze_sources,
    analyze_tracers,
    boot_paths,
    diff_analyses,
    load_trace_sources,
    records_from_chrome,
    records_from_tracer,
    render_analysis,
    render_trace_diff,
)
from repro.obs.flame import folded_stacks
from repro.sim import Engine
from repro.vmi import AzureCommunityDataset, DatasetConfig
from repro.workload import StormConfig, boot_storm
from repro.workload.scenarios import FaultPlan


# -- unit: the last-finisher chain ----------------------------------------------------


def _build(script):
    """Run ``script(engine, tracer)`` (a generator) to completion."""
    engine = Engine(seed=0)
    tracer = SpanTracer(engine)
    engine.process(script(engine, tracer))
    engine.run()
    tracer.close_open_spans()
    return tracer


class TestCriticalChain:
    def test_gap_and_slack_partition_the_boot(self):
        def script(engine, tracer):
            root = tracer.span("boot", track="n0")
            yield engine.timeout(2.0)
            child = tracer.span("disk.read", parent=root)
            yield engine.timeout(6.0)
            child.end()
            yield engine.timeout(2.0)
            root.end()

        (path,) = boot_paths(records_from_tracer(_build(script)))
        assert path.latency_us == pytest.approx(10e6)
        assert path.critical_us == pytest.approx(6e6)  # the child
        assert path.slack_us == pytest.approx(4e6)  # lead-in + tail
        assert path.critical_us + path.slack_us == pytest.approx(
            path.latency_us, rel=1e-12
        )
        assert path.by_name_us["disk.read"] == pytest.approx(6e6)

    def test_last_finisher_wins_overlap(self):
        def script(engine, tracer):
            root = tracer.span("boot", track="n0")
            first = tracer.span("first", parent=root)
            yield engine.timeout(4.0)
            second = tracer.span("second", parent=root)
            yield engine.timeout(2.0)
            first.end()  # first: [0, 6]
            yield engine.timeout(4.0)
            second.end()  # second: [4, 10]
            root.end()

        (path,) = boot_paths(records_from_tracer(_build(script)))
        # second covers the frontier [4, 10]; first only [0, 4]
        assert path.by_name_us["second"] == pytest.approx(6e6)
        assert path.by_name_us["first"] == pytest.approx(4e6)
        assert path.slack_us == pytest.approx(0.0)

    def test_tie_breaks_toward_the_later_span(self):
        def script(engine, tracer):
            root = tracer.span("boot", track="n0")
            a = tracer.span("childA", parent=root)
            b = tracer.span("childB", parent=root)
            yield engine.timeout(1.0)
            a.end()
            b.end()
            root.end()

        (path,) = boot_paths(records_from_tracer(_build(script)))
        # identical [0, 1] intervals: the larger span_id (minted later) wins
        assert path.by_name_us == {"childB": pytest.approx(1e6)}

    def test_descends_into_grandchildren(self):
        def script(engine, tracer):
            root = tracer.span("boot", track="n0")
            fetch = tracer.span("gluster.fetch", parent=root)
            yield engine.timeout(1.0)
            nic = tracer.span("nic.transfer", parent=fetch)
            yield engine.timeout(3.0)
            nic.end()
            fetch.end()
            root.end()

        (path,) = boot_paths(records_from_tracer(_build(script)))
        assert path.by_name_us["nic.transfer"] == pytest.approx(3e6)
        assert path.by_name_us["gluster.fetch"] == pytest.approx(1e6)
        stacks = {names for _r, names, _a, _b in path.segments}
        assert ("boot", "gluster.fetch", "nic.transfer") in stacks

    def test_live_and_parsed_records_analyze_byte_identically(self):
        def script(engine, tracer):
            root = tracer.span("boot", track="n0")
            child = tracer.span("disk.read", parent=root)
            yield engine.timeout(0.123456789)
            child.end(service_s=0.1, queue_s=0.023456789)
            yield engine.timeout(0.7e-7)  # sub-µs tail: float-hostile
            root.end()

        tracer = _build(script)
        live = analyze_tracers({"p": tracer})
        parsed = analyze_sources(
            [records_from_chrome(json.loads(dump_chrome_trace({"p": tracer})))]
        )
        assert dumps_canonical(live) == dumps_canonical(parsed)


# -- storm-level: invariants, reconciliation, round-trip ------------------------------


def faulted_storm_config(**overrides):
    base = dict(
        n_nodes=16, vms_per_node=4, scale=1 / 4096, seed=3,
        faults=FaultPlan.parse(
            "crash:compute1@5+30,flap:compute2@8+10,brick:storage0@3+15"
        ),
    )
    base.update(overrides)
    return StormConfig(**base)


@pytest.fixture(scope="module")
def storm_dataset():
    return AzureCommunityDataset(DatasetConfig(scale=1 / 4096))


@pytest.fixture(scope="module")
def storm_rig(tmp_path_factory, storm_dataset):
    """One faulted 16x4 storm: the report plus its exported trace file."""
    path = tmp_path_factory.mktemp("trace") / "storm.json"
    report = boot_storm(
        faulted_storm_config(), dataset=storm_dataset, trace_path=path
    )
    return report, path


class TestStormAnalysis:
    def test_per_boot_partition_invariant(self, storm_rig):
        _report, path = storm_rig
        (processes,) = load_trace_sources(path)
        for records in processes.values():
            paths = boot_paths(records)
            assert paths
            for boot in paths:
                assert boot.critical_us + boot.slack_us == pytest.approx(
                    boot.latency_us, rel=1e-9, abs=1e-3
                )
                assert sum(boot.tiers_us.values()) == pytest.approx(
                    boot.latency_us, rel=1e-9, abs=1e-3
                )
                assert sum(boot.buckets_us.values()) == pytest.approx(
                    boot.latency_us, rel=1e-9, abs=1e-3
                )

    def test_buckets_reconcile_with_attribution(self, storm_rig, storm_dataset):
        # warm + faulted (squirrel), cold + faulted (baseline) from the rig;
        # the pure warm/cold cases come from an unfaulted storm below
        report, path = storm_rig
        payload = analyze_sources(load_trace_sources(path))
        self._assert_reconciles(report, payload)

    def test_warm_and_cold_runs_reconcile(self, storm_dataset, tmp_path):
        path = tmp_path / "plain.json"
        report = boot_storm(
            faulted_storm_config(n_nodes=4, vms_per_node=2, faults=None),
            dataset=storm_dataset, trace_path=path,
        )
        payload = analyze_sources(load_trace_sources(path))
        self._assert_reconciles(report, payload)
        # the paper's claim, chain form: a warm full-replication storm has a
        # network-free critical path; the no-cache baseline does not
        assert payload["processes"]["squirrel"]["critical_shares"]["net_s"] == 0.0
        assert payload["processes"]["baseline"]["critical_shares"]["net_s"] > 0.3

    @staticmethod
    def _assert_reconciles(report, payload):
        for side_name in ("squirrel", "baseline"):
            side = getattr(report, side_name)
            block = payload["processes"][side_name]
            assert block["boots"] == side.boots
            tiers = side.attribution["tiers"]
            for bucket in TIERS:
                expected = tiers[bucket]["mean"] * tiers[bucket]["count"]
                assert block["buckets"][bucket] == pytest.approx(
                    expected, rel=1e-9, abs=1e-6
                )

    def test_blame_table_round_trips_exactly(self, storm_rig):
        """The analyzer reproduces the report's in-memory critical_path
        block byte-for-byte from the exported trace file."""
        report, path = storm_rig
        payload = analyze_sources(load_trace_sources(path))
        for side_name in ("squirrel", "baseline"):
            block = payload["processes"][side_name]
            compact = {
                "boots": block["boots"],
                "critical_s": block["critical_s"],
                "slack_s": block["slack_s"],
                "shares": block["critical_shares"],
                "blame": {
                    row["span"]: row["critical_s"] for row in block["blame"]
                },
            }
            embedded = getattr(report, side_name).critical_path
            assert dumps_canonical(embedded) == dumps_canonical(compact)

    def test_same_seed_analyses_are_byte_identical(
        self, storm_rig, storm_dataset, tmp_path
    ):
        _report, path = storm_rig
        again = tmp_path / "again.json"
        boot_storm(
            faulted_storm_config(), dataset=storm_dataset, trace_path=again
        )
        first = dumps_canonical(analyze_sources(load_trace_sources(path)))
        second = dumps_canonical(analyze_sources(load_trace_sources(again)))
        assert first == second
        for weight in ("wall", "critical"):
            assert folded_stacks(
                load_trace_sources(path), weight
            ) == folded_stacks(load_trace_sources(again), weight)

    def test_blame_shares_and_render(self, storm_rig):
        _report, path = storm_rig
        payload = analyze_sources(load_trace_sources(path))
        for block in payload["processes"].values():
            assert block["blame"] == sorted(
                block["blame"],
                key=lambda row: (-row["critical_s"], row["span"]),
            )
            for row in block["blame"]:
                assert 0 <= row["share"] <= 1
                assert 0 < row["boots"] <= block["boots"]
            shares = block["critical_shares"]
            assert sum(shares.values()) == pytest.approx(1.0, rel=1e-9)
        text = render_analysis(payload)
        assert "critical composition" in text
        assert "squirrel" in text and "baseline" in text


class TestFlame:
    def test_critical_totals_match_latency(self, storm_rig):
        _report, path = storm_rig
        sources = load_trace_sources(path)
        folded = folded_stacks(sources, "critical")
        lines = folded.splitlines()
        assert lines and all(" " in line for line in lines)
        totals = {}
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            process = stack.split(";", 1)[0]
            totals[process] = totals.get(process, 0) + int(value)
        payload = analyze_sources(sources)
        for process, block in payload["processes"].items():
            latency_us = block["latency_s"]["total"] * 1e6
            # per-stack integer rounding: within 1 µs per emitted stack
            assert abs(totals[process] - latency_us) <= len(lines)
        assert lines == sorted(lines)

    def test_wall_weight_counts_self_time_only(self):
        def script(engine, tracer):
            root = tracer.span("boot", track="n0")
            child = tracer.span("work", parent=root)
            yield engine.timeout(3.0)
            child.end()
            yield engine.timeout(1.0)
            root.end()

        folded = folded_stacks(
            [{"p": records_from_tracer(_build(script))}], "wall"
        )
        assert folded.splitlines() == [
            "p;boot 1000000", "p;boot;work 3000000",
        ]

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValueError):
            folded_stacks([], weight="flames")


class TestTraceDiff:
    def test_identical_payloads_diff_clean(self, storm_rig):
        _report, path = storm_rig
        payload = analyze_sources(load_trace_sources(path))
        rows = diff_analyses(payload, payload, tolerance=0.05)
        assert rows == []
        assert "no regressions" in render_trace_diff(rows, tolerance=0.05)

    def test_inflation_sorts_largest_delta_first(self, storm_rig):
        _report, path = storm_rig
        old = analyze_sources(load_trace_sources(path))
        new = copy.deepcopy(old)
        for block in new["processes"].values():
            block["critical_s"] *= 10
            block["latency_s"]["total"] *= 10
            for row in block["blame"]:
                row["critical_s"] *= 10
        rows = diff_analyses(old, new, tolerance=0.05)
        assert rows
        deltas = [abs(row["delta_s"]) for row in rows]
        assert deltas == sorted(deltas, reverse=True)
        assert all(
            row["regression"] for row in rows if row["metric"] == "blame"
        )

    def test_new_span_regresses_from_zero_baseline(self, storm_rig):
        _report, path = storm_rig
        old = analyze_sources(load_trace_sources(path))
        new = copy.deepcopy(old)
        new["processes"]["squirrel"]["blame"].append({
            "span": "surprise.span", "critical_s": 1.5, "share": 0.1,
            "boots": 1, "share_p50": 0.1, "share_p95": 0.1, "share_max": 0.1,
        })
        (row,) = [
            r for r in diff_analyses(old, new, tolerance=0.05)
            if r["span"] == "surprise.span"
        ]
        assert row["regression"] and row["rel"] is None
        assert "from 0" in render_trace_diff([row], tolerance=0.05)


# -- CLI ------------------------------------------------------------------------------


class TestTraceCLI:
    def run_cli(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out

    def test_analyze_json_is_deterministic(self, storm_rig, capsys):
        _report, path = storm_rig
        code, out = self.run_cli(["trace", "analyze", str(path), "--json"], capsys)
        assert code == 0
        code2, out2 = self.run_cli(["trace", "analyze", str(path), "--json"], capsys)
        assert out == out2
        payload = json.loads(out)
        assert payload["schema"] == "repro.trace-analyze/1"
        assert payload["processes"]["squirrel"]["boots"] == 64

    def test_flame_writes_folded_output(self, storm_rig, tmp_path, capsys):
        _report, path = storm_rig
        out_file = tmp_path / "storm.folded"
        code, _ = self.run_cli(
            ["trace", "flame", str(path), "--out", str(out_file),
             "--weight", "critical"],
            capsys,
        )
        assert code == 0
        assert out_file.read_text().splitlines()

    def test_diff_gate_exit_codes(self, storm_rig, tmp_path, capsys):
        _report, path = storm_rig
        code, _ = self.run_cli(
            ["trace", "diff", str(path), str(path)], capsys
        )
        assert code == 0
        inflated = tmp_path / "inflated.json"
        trace = json.loads(path.read_text())
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                event["ts"] *= 10.0
                event["dur"] *= 10.0
        inflated.write_text(json.dumps(trace))
        code, out = self.run_cli(
            ["trace", "diff", str(path), str(inflated), "--json"], capsys
        )
        assert code == 1
        assert json.loads(out)["ok"] is False

    def test_bad_path_is_a_cli_error(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "analyze", "/no/such/trace.json"])
        assert excinfo.value.code == 2

    def test_sweep_trace_requires_a_store(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "storm", "--grid", "seed=0,1", "--trace"])
        assert excinfo.value.code == 2


# -- sweep stores ---------------------------------------------------------------------


class TestSweepTraces:
    def _sweep(self, workers, trace_dir):
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec.from_grid(
            "storm", "seed=0,1", {"nodes": 2, "vms_per_node": 1}
        )
        return run_sweep(
            spec, workers=workers, scale=4096.0, quick=4,
            trace_dir=trace_dir,
        )

    def test_worker_count_invariance_and_store_analysis(self, tmp_path):
        dir1, dir2 = tmp_path / "w1" / "traces", tmp_path / "w2" / "traces"
        r1 = self._sweep(1, dir1)
        r2 = self._sweep(2, dir2)
        assert dumps_canonical(r1.to_dict()) == dumps_canonical(r2.to_dict())
        names = sorted(p.name for p in dir1.glob("*.json"))
        assert names == ["point-0000.json", "point-0001.json"]
        for name in names:
            assert (dir1 / name).read_bytes() == (dir2 / name).read_bytes()
        # `trace analyze` accepts the store dir (traces/ inside) and the
        # traces dir itself, byte-identically across worker counts
        a1 = dumps_canonical(analyze_sources(load_trace_sources(tmp_path / "w1")))
        a2 = dumps_canonical(analyze_sources(load_trace_sources(dir2)))
        assert a1 == a2
        assert json.loads(a1)["totals"]["boots"] == 8  # 2 seeds x 2 boots x 2 sides

    def test_trace_dir_does_not_change_report_bytes(self, tmp_path):
        with_traces = self._sweep(1, tmp_path / "traces")
        without = self._sweep(1, None)
        assert dumps_canonical(with_traces.to_dict()) == dumps_canonical(
            without.to_dict()
        )


# -- uniform --trace across the registry ----------------------------------------------


from repro.experiments import registry  # noqa: E402


@pytest.mark.parametrize("exp_id", sorted(registry.all_experiments()))
def test_every_experiment_accepts_trace(exp_id, tmp_path):
    exp = registry.get(exp_id)
    spec = exp.param("trace")
    assert spec.type is str and not spec.gridable
    params = exp.validate({"trace": str(tmp_path / "t.json")})
    assert params["trace"] == str(tmp_path / "t.json")


def test_untimed_experiment_writes_a_loadable_empty_trace(tmp_path):
    from repro.experiments import ExperimentConfig, ExperimentContext

    ctx = ExperimentContext(ExperimentConfig(scale=1 / 4096, quick=16))
    exp = registry.get("tab02")
    path = tmp_path / "tab02.json"
    exp.run(ctx, **exp.validate({"trace": str(path)}))
    payload = analyze_sources(load_trace_sources(path))
    assert payload["totals"]["boots"] == 0
    assert payload["processes"]["tab02"]["blame"] == []
