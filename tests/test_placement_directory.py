"""Unit tests for the placement directory: holders, distance, failover."""

import pytest

from repro.common.errors import ConfigError
from repro.placement import PlacementDirectory

NODES = tuple(f"compute{i}" for i in range(8))


def up(*down):
    dead = set(down)
    return lambda name: name not in dead


@pytest.fixture
def directory():
    d = PlacementDirectory(NODES)
    d.add_image(0, ("compute1", "compute5"), 100)
    d.add_image(1, ("compute0",), 40)
    return d


class TestRegistration:
    def test_holders_in_insertion_order(self, directory):
        assert directory.holders(0) == ("compute1", "compute5")
        assert directory.holds("compute5", 0)
        assert not directory.holds("compute2", 0)

    def test_unknown_node_rejected(self, directory):
        with pytest.raises(ConfigError, match="unknown compute node"):
            directory.add_image(2, ("compute99",), 10)

    def test_empty_holder_set_rejected(self, directory):
        with pytest.raises(ConfigError, match="at least one holder"):
            directory.add_image(2, (), 10)

    def test_drop_forgets_everything(self, directory):
        directory.drop_image(0)
        assert directory.holders(0) == ()
        assert directory.cache_bytes_of(0) == 0
        assert directory.images() == [1]


class TestAccounting:
    def test_hoarded_bytes_per_node_and_total(self, directory):
        assert directory.hoarded_bytes("compute1") == 100
        assert directory.hoarded_bytes("compute0") == 40
        assert directory.total_hoarded_bytes() == 2 * 100 + 40
        assert directory.total_replicas() == 3

    def test_adoption_grows_the_holder_set(self, directory):
        directory.adopt("compute3", 0)
        assert directory.holders(0) == ("compute1", "compute5", "compute3")
        assert directory.total_hoarded_bytes() == 3 * 100 + 40
        assert directory.images_of("compute3") == [0]

    def test_adopting_untracked_image_rejected(self, directory):
        with pytest.raises(ConfigError, match="not tracked"):
            directory.adopt("compute3", 9)


class TestNearestHolder:
    def test_ring_distance_picks_closest(self, directory):
        # compute6 is 1 hop from compute5 around the ring, 3 from compute1
        assert directory.nearest_holder(0, "compute6", is_up=up()) == "compute5"
        # compute0 wraps: compute1 at distance 1, compute5 at distance 3
        assert directory.nearest_holder(0, "compute0", is_up=up()) == "compute1"

    def test_tie_breaks_to_lower_index(self):
        d = PlacementDirectory(NODES)
        d.add_image(0, ("compute1", "compute5"), 10)
        # compute3 is 2 hops from both holders; lower index wins
        assert d.nearest_holder(0, "compute3", is_up=up()) == "compute1"

    def test_survivor_failover(self, directory):
        assert (
            directory.nearest_holder(0, "compute6", is_up=up("compute5"))
            == "compute1"
        )
        assert (
            directory.nearest_holder(
                0, "compute6", is_up=up("compute5", "compute1")
            )
            is None
        )

    def test_reader_never_returned(self, directory):
        assert directory.nearest_holder(1, "compute0", is_up=up()) is None

    def test_untracked_image_has_no_holder(self, directory):
        assert directory.nearest_holder(7, "compute0", is_up=up()) is None


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(ConfigError, match="at least one"):
            PlacementDirectory(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            PlacementDirectory(("a", "a"))
