"""Unit tests for the paper's storage metrics."""

import numpy as np
import pytest

from repro.analysis import (
    combined_compression_ratio,
    compression_ratio,
    cross_similarity,
    dataset_metrics,
    dedup_ratio,
)
from repro.vmi import block_view, make_estimator


def view_of(grain_ids, block_size=4096):
    return block_view(np.asarray(grain_ids, dtype=np.uint64), block_size)


def gid(tag, cls=2):
    return (tag << 3) | cls


@pytest.fixture(scope="module")
def estimator():
    return make_estimator("gzip6", (4096,), samples_per_point=2)


class TestDedupRatio:
    def test_identical_files(self):
        a = view_of([gid(1)] * 8)
        b = view_of([gid(1)] * 8)
        assert dedup_ratio([a, b]) == pytest.approx(4.0)  # 4 blocks, 1 unique

    def test_disjoint_files(self):
        a = view_of([gid(1), gid(2), gid(3), gid(4)])
        b = view_of([gid(5), gid(6), gid(7), gid(8)])
        assert dedup_ratio([a, b]) == pytest.approx(1.0)

    def test_holes_excluded(self):
        a = view_of([gid(1)] * 4 + [0] * 4)
        assert dedup_ratio([a]) == pytest.approx(1.0)

    def test_empty(self):
        assert dedup_ratio([view_of([0] * 4)]) == 1.0


class TestCrossSimilarity:
    def test_identical_files_score_one(self):
        a = view_of([gid(1), gid(2), gid(3), gid(4)])
        b = view_of([gid(1), gid(2), gid(3), gid(4)])
        assert cross_similarity([a, b]) == pytest.approx(1.0)

    def test_disjoint_files_score_zero(self):
        a = view_of([gid(1), gid(2), gid(3), gid(4)])
        b = view_of([gid(5), gid(6), gid(7), gid(8)])
        assert cross_similarity([a, b]) == 0.0

    def test_within_file_duplicates_do_not_count(self):
        """Repetition counts *cross-file* sharing only."""
        a = view_of([gid(1)] * 8)  # 2 identical blocks within one file
        b = view_of([gid(9), gid(10), gid(11), gid(12)])
        assert cross_similarity([a, b]) == 0.0

    def test_partial_sharing(self):
        a = view_of([gid(1), gid(2), gid(3), gid(4)])  # 1 block (4 grains/blk)
        b = view_of([gid(1), gid(2), gid(3), gid(4)])
        c = view_of([gid(5), gid(6), gid(7), gid(8)])
        # blocks: a=1, b=1 (same), c=1. repetitions: shared block in 2 files
        # => 2; sum |U_i| = 3
        assert cross_similarity([a, b, c]) == pytest.approx(2 / 3)

    def test_empty(self):
        assert cross_similarity([view_of([0] * 4)]) == 0.0


class TestCompressionRatio:
    def test_over_unique_blocks_only(self, estimator):
        """Duplicated blocks must not be double-counted."""
        a = view_of([gid(1, cls=1)] * 4)
        b = view_of([gid(1, cls=1)] * 4)
        single = compression_ratio([a], estimator)
        both = compression_ratio([a, b], estimator)
        assert both == pytest.approx(single)

    def test_text_compresses_better_than_packed(self, estimator):
        text = view_of([gid(i, cls=1) for i in range(16)])
        packed = view_of([gid(i, cls=4) for i in range(16)])
        assert compression_ratio([text], estimator) > compression_ratio(
            [packed], estimator
        )

    def test_ccr_is_product(self, estimator):
        a = view_of([gid(1, cls=1)] * 8)
        ccr = combined_compression_ratio([a], estimator)
        assert ccr == pytest.approx(
            dedup_ratio([a]) * compression_ratio([a], estimator)
        )


class TestDatasetMetrics:
    def test_consistent_with_individual_metrics(self, estimator):
        views = [
            view_of([gid(1, 1), gid(2, 2), gid(3, 1), gid(4, 2)] * 2),
            view_of([gid(1, 1), gid(2, 2), gid(5, 1), gid(6, 2)] * 2),
        ]
        result = dataset_metrics(views, estimator)
        assert result.dedup_ratio == pytest.approx(dedup_ratio(views))
        assert result.compression_ratio == pytest.approx(
            compression_ratio(views, estimator)
        )
        assert result.cross_similarity == pytest.approx(cross_similarity(views))
        assert result.ccr == pytest.approx(
            result.dedup_ratio * result.compression_ratio
        )

    def test_counts(self, estimator):
        views = [view_of([gid(1)] * 8)]  # two 4-grain blocks, identical
        result = dataset_metrics(views, estimator)
        assert result.n_blocks == 2
        assert result.n_unique == 1

    def test_rejects_empty(self, estimator):
        with pytest.raises(ValueError):
            dataset_metrics([], estimator)
