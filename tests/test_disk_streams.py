"""Unit tests for the multi-stream (NCQ/readahead) disk front end."""

import pytest

from repro.disk import DAS4_DISK, MultiStreamDisk


def make(streams=4, window=4 << 20):
    return MultiStreamDisk(
        DAS4_DISK, span_bytes=1 << 40, max_streams=streams, stream_window=window
    )


class TestStreamRecognition:
    def test_sequential_reads_one_seek(self):
        disk = make()
        for i in range(32):
            disk.read(i * 65536, 65536)
        assert disk.total_seeks == 1  # only the initial positioning

    def test_interleaved_streams_served_without_seeks(self):
        """The deduplicated-cache pattern: reads alternating between two
        far-apart but individually sequential regions."""
        disk = make()
        base_a, base_b = 0, 100 << 30
        for i in range(32):
            disk.read(base_a + i * 65536, 65536)
            disk.read(base_b + i * 65536, 65536)
        assert disk.total_seeks == 2  # one per stream start

    def test_more_streams_than_capacity_thrash(self):
        disk = make(streams=2)
        bases = [i * (10 << 30) for i in range(4)]  # 4 regions, 2 streams
        for i in range(8):
            for base in bases:
                disk.read(base + i * 65536, 65536)
        assert disk.total_seeks > 8  # LRU stream eviction forces re-seeks

    def test_small_backward_jump_tolerated(self):
        disk = make()
        disk.read(1 << 30, 65536)
        elapsed = disk.read((1 << 30) - 4096, 4096)  # drive-cache hit
        assert elapsed == pytest.approx(4096 / DAS4_DISK.sequential_bw)

    def test_far_jump_costs_a_seek(self):
        disk = make()
        disk.read(0, 65536)
        elapsed = disk.read(500 << 30, 65536)
        assert elapsed > 0.004

    def test_jump_beyond_window_within_stream(self):
        disk = make(window=1 << 20)
        disk.read(0, 65536)
        disk.read(2 << 20, 65536)  # past the 1 MB window
        assert disk.total_seeks == 2


class TestAccounting:
    def test_counters(self):
        disk = make()
        disk.read(0, 4096)
        disk.read(1 << 30, 4096)
        assert disk.total_requests == 2
        assert disk.total_bytes == 8192
        assert disk.total_time_s > 0

    def test_reset(self):
        disk = make()
        disk.read(0, 4096)
        disk.reset()
        assert disk.total_requests == 0
        # streams forgotten: the same offset seeks again
        disk.read(0, 4096)
        assert disk.total_seeks == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make().read(0, -1)

    def test_needs_at_least_one_stream(self):
        with pytest.raises(ValueError):
            MultiStreamDisk(DAS4_DISK, max_streams=0)
