"""Unit and property tests for the adaptive replacement cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zfs.arc import AdaptiveReplacementCache


def make(capacity=1000):
    return AdaptiveReplacementCache(capacity)


class TestBasics:
    def test_miss_then_hit(self):
        arc = make()
        assert arc.get("a") is None
        arc.put("a", b"payload", 100)
        assert arc.get("a") == b"payload"
        assert arc.stats.hits == 1
        assert arc.stats.misses == 1

    def test_contains(self):
        arc = make()
        arc.put("a", 1, 10)
        assert "a" in arc
        assert "b" not in arc

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AdaptiveReplacementCache(0)

    def test_rejects_nonpositive_size(self):
        arc = make()
        with pytest.raises(ValueError):
            arc.put("a", 1, 0)

    def test_oversized_entry_bypasses(self):
        arc = make(100)
        arc.put("big", 1, 200)
        assert "big" not in arc
        assert arc.resident_bytes == 0

    def test_clear(self):
        arc = make()
        arc.put("a", 1, 10)
        arc.clear()
        assert "a" not in arc
        assert arc.resident_bytes == 0


class TestCapacity:
    def test_never_exceeds_budget(self):
        arc = make(1000)
        for i in range(100):
            arc.put(f"k{i}", i, 90)
            assert arc.resident_bytes <= 1000

    def test_eviction_under_pressure(self):
        arc = make(300)
        arc.put("a", 1, 100)
        arc.put("b", 2, 100)
        arc.put("c", 3, 100)
        arc.put("d", 4, 100)  # must evict someone
        resident = [k for k in ("a", "b", "c", "d") if k in arc]
        assert len(resident) == 3


class TestAdaptivity:
    def test_second_access_promotes_to_t2(self):
        arc = make(1000)
        arc.put("a", 1, 100)
        arc.get("a")
        # fill T1 with new keys; "a" (in T2) must survive one-hit-wonders
        for i in range(20):
            arc.put(f"junk{i}", i, 100)
        assert "a" in arc

    def test_scan_resistance(self):
        """A long one-shot scan must not flush the hot set — the ARC property."""
        arc = make(1000)
        for i in range(5):
            arc.put(f"hot{i}", i, 100)
        for i in range(5):
            arc.get(f"hot{i}")  # promote to T2
        for i in range(200):
            arc.put(f"scan{i}", i, 100)  # one-shot scan
        hot_survivors = sum(1 for i in range(5) if f"hot{i}" in arc)
        assert hot_survivors >= 3

    def test_ghost_hit_reinserts_to_t2(self):
        arc = make(200)
        arc.put("a", 1, 100)
        arc.put("b", 2, 100)
        arc.put("c", 3, 100)  # evicts "a" to B1 ghost
        assert "a" not in arc
        arc.put("a", 1, 100)  # ghost hit
        assert "a" in arc

    def test_full_t1_eviction_remembers_keys_in_b1(self):
        """Regression: when T1 alone fills L1, the evicted LRU keys must
        land in the B1 ghost list (ARC's |T1| = c case) instead of being
        forgotten — a prompt re-reference is a recency miss that grows p."""
        arc = make(300)
        for key in ("a", "b", "c"):
            arc.put(key, key, 100)  # T1 = c, B1 empty
        arc.put("d", 4, 100)  # full-T1 path: evicts "a"
        assert "a" not in arc
        assert arc.stats.t1_evictions >= 1
        p_before = arc.p
        arc.put("a", 1, 100)  # must be a B1 ghost hit, not a cold insert
        assert arc.stats.b1_ghost_hits == 1
        assert arc.p > p_before
        arc.get("a")
        assert arc.stats.t2_hits == 1  # ghost hits re-insert into T2

    def test_per_tier_stats_split_the_totals(self):
        arc = make(1000)
        arc.put("a", 1, 100)
        arc.get("a")  # T1 hit (promotes to T2)
        arc.get("a")  # T2 hit
        arc.get("nope")  # miss
        stats = arc.stats
        assert stats.hits == stats.t1_hits + stats.t2_hits == 2
        assert (stats.t1_hits, stats.t2_hits, stats.misses) == (1, 1, 1)
        assert stats.as_dict()["t1_hits"] == 1
        assert set(arc.tier_bytes()) == {"t1", "t2", "b1", "b2"}


class TestWorkloads:
    def test_lru_friendly_workload_hits(self):
        arc = make(10_000)
        rng = np.random.default_rng(3)
        keys = [f"k{i}" for i in range(50)]
        for _ in range(2000):
            key = keys[int(rng.integers(0, len(keys)))]
            if arc.get(key) is None:
                arc.put(key, key, 100)
        # working set (5000 B) fits in capacity: hit rate must be high
        assert arc.stats.hit_rate > 0.9

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 30), st.booleans()), min_size=1, max_size=300
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_budget_and_consistency(self, ops):
        arc = make(500)
        for key_int, is_put in ops:
            key = f"k{key_int}"
            if is_put:
                arc.put(key, key_int, 50)
            else:
                value = arc.get(key)
                if value is not None:
                    assert value == key_int
            assert arc.resident_bytes <= 500
