"""Unit tests for topology, links, and the transfer ledger."""

import pytest

from repro.common.errors import NetworkError
from repro.net import GBE_1, IB_QDR, Node, NodeKind, TransferLedger


class TestLinkProfiles:
    def test_gbe_payload_rate(self):
        # 1 Gb/s at 90% efficiency = 112.5 MB/s
        assert GBE_1.bytes_per_s == pytest.approx(112.5e6)

    def test_ib_faster_than_gbe(self):
        assert IB_QDR.bytes_per_s > 10 * GBE_1.bytes_per_s

    def test_transfer_time_scales_with_bytes(self):
        assert GBE_1.transfer_time(2_000_000) > GBE_1.transfer_time(1_000_000)

    def test_transfer_time_includes_latency(self):
        assert GBE_1.transfer_time(0) == pytest.approx(GBE_1.latency_s)

    def test_streams_share_bandwidth(self):
        one = GBE_1.transfer_time(10_000_000, streams=1)
        four = GBE_1.transfer_time(10_000_000, streams=4)
        assert four > 3 * one

    def test_negative_size_rejected(self):
        with pytest.raises(NetworkError):
            GBE_1.transfer_time(-1)

    def test_100mb_diff_multicasts_in_seconds_on_gbe(self):
        """Section 3.2: an O(100 MB) diff takes no more than a couple of
        seconds on commodity 1 GbE."""
        assert GBE_1.transfer_time(100 << 20) < 2.0


class TestLedger:
    def test_record_and_query(self):
        ledger = TransferLedger()
        ledger.record("s1", "c1", 1000, "boot-read")
        ledger.record("s1", "c2", 500, "boot-read")
        ledger.record("c1", "s1", 200, "upload")
        assert ledger.bytes_into("c1") == 1000
        assert ledger.bytes_out_of("s1") == 1500
        assert ledger.total_bytes() == 1700

    def test_purpose_filter(self):
        ledger = TransferLedger()
        ledger.record("s1", "c1", 1000, "boot-read")
        ledger.record("s1", "c1", 111, "cache-propagation")
        assert ledger.bytes_into("c1", purpose="boot-read") == 1000
        assert ledger.bytes_into("c1", purpose="cache-propagation") == 111

    def test_compute_ingress(self):
        ledger = TransferLedger()
        compute = [Node(f"c{i}", NodeKind.COMPUTE) for i in range(3)]
        for node in compute:
            ledger.record("s1", node.name, 100, "boot-read")
        ledger.record("s1", "other", 999, "boot-read")
        assert ledger.compute_ingress_bytes(compute) == 300

    def test_compute_ingress_accepts_names(self):
        ledger = TransferLedger()
        ledger.record("s1", "c0", 100, "boot-read")
        assert ledger.compute_ingress_bytes(["c0"]) == 100

    def test_negative_rejected(self):
        ledger = TransferLedger()
        with pytest.raises(NetworkError):
            ledger.record("a", "b", -1, "x")

    def test_clear(self):
        ledger = TransferLedger()
        ledger.record("a", "b", 10, "x")
        ledger.clear()
        assert ledger.total_bytes() == 0

    def test_fanout_matches_per_receiver_record(self):
        # the batched path a 10k-node multicast takes must be
        # indistinguishable from per-receiver record() calls
        fanout, scalar = TransferLedger(), TransferLedger()
        dsts = [f"c{i}" for i in range(5)]
        fanout.record_fanout("s1", dsts, 1000, "cache-propagation", 0.25)
        for dst in dsts:
            scalar.record("s1", dst, 1000, "cache-propagation", 0.25)
        assert fanout.transfers == scalar.transfers
        assert fanout.bytes_out_of("s1") == scalar.bytes_out_of("s1") == 5000
        for dst in dsts:
            assert fanout.bytes_into(dst) == scalar.bytes_into(dst)
            assert fanout.bytes_into(
                dst, purpose="cache-propagation"
            ) == scalar.bytes_into(dst, purpose="cache-propagation")
        assert fanout.total_bytes() == scalar.total_bytes()
        assert fanout.total_bytes(purpose="cache-propagation") == 5000

    def test_fanout_negative_rejected(self):
        ledger = TransferLedger()
        with pytest.raises(NetworkError):
            ledger.record_fanout("a", ["b"], -1, "x")
