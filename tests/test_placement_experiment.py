"""The placement experiment's contracts: baseline identity, strict savings,
and byte-identical sweep merges at any worker count."""

import pytest

from repro.common.report import dumps_canonical
from repro.experiments import placement_storm, registry, storm_timeline
from repro.sweep import SweepSpec, run_sweep
from repro.workload import StormConfig

#: small enough for unit tests, large enough for redirects to happen
SMALL = {"nodes": 8, "vms_per_node": 2}


class TestRegistration:
    def test_registered_with_params_and_metrics(self):
        exp = registry.get("placement")
        assert exp.exp_id == placement_storm.EXPERIMENT_ID
        names = {spec.name for spec in exp.params}
        assert {"policy", "transport", "nodes", "zipf", "faults"} <= names
        assert "placement.hoarded_bytes" in exp.metrics

    def test_policy_and_transport_choices_enforced(self):
        exp = registry.get("placement")
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="not in"):
            exp.validate({"policy": "everything"})


class TestFullBaseline:
    def test_full_policy_report_matches_storm_run(self):
        """policy=full attaches no coordinator: the embedded report must be
        byte-for-byte the storm experiment's at the same config."""
        full = placement_storm.run(policy="full", **SMALL)
        storm = storm_timeline.run(
            config=StormConfig(n_nodes=8, vms_per_node=2, seed=0)
        )
        assert dumps_canonical(full.report.to_dict()) == dumps_canonical(
            storm.report.to_dict()
        )

    def test_full_block_is_analytic(self):
        full = placement_storm.run(policy="full", **SMALL)
        block = full.placement
        assert block["peer_redirects"] == 0
        assert block["origin_fallbacks"] == 0
        assert block["hoarded_bytes"] == block["full_hoarded_bytes"]
        assert block["hoarded_fraction"] == pytest.approx(1.0)
        assert block["hit_rate"] == pytest.approx(1.0)


class TestPartialPolicies:
    @pytest.mark.parametrize("policy", ["top_k", "zipf_weighted"])
    def test_strictly_lower_hoard_with_redirects(self, policy):
        full = placement_storm.run(policy="full", **SMALL)
        partial = placement_storm.run(policy=policy, **SMALL)
        assert (
            partial.placement["hoarded_bytes"]
            < full.placement["hoarded_bytes"]
        )
        assert partial.placement["peer_redirects"] > 0
        assert partial.placement["redirect_bytes"] > 0
        assert partial.placement["hit_rate"] < 1.0

    def test_transport_changes_seed_charge_not_hoard(self):
        multicast = placement_storm.run(
            policy="top_k", transport="multicast", **SMALL
        )
        swarm = placement_storm.run(policy="top_k", transport="swarm", **SMALL)
        assert (
            multicast.placement["hoarded_bytes"]
            == swarm.placement["hoarded_bytes"]
        )
        assert swarm.placement["seed_peer_upload_bytes"] > 0
        assert multicast.placement["seed_peer_upload_bytes"] == 0

    def test_renderer_mentions_the_frontier(self):
        exp = registry.get("placement")
        result = placement_storm.run(policy="top_k", **SMALL)
        text = exp.render(result)
        assert "hoard/ingress frontier" in text
        assert "full (ref)" in text


class TestSweepDeterminism:
    def _spec(self):
        return SweepSpec.from_grid(
            "placement",
            "policy=full,top_k seed=0,1",
            {"nodes": 4, "vms_per_node": 1},
        )

    def test_workers_do_not_change_bytes(self):
        serial = run_sweep(self._spec(), workers=1, scale=4096.0)
        parallel = run_sweep(self._spec(), workers=2, scale=4096.0)
        assert dumps_canonical(serial.to_dict()) == dumps_canonical(
            parallel.to_dict()
        )

    def test_summary_aggregates_placement_metrics(self):
        result = run_sweep(self._spec(), workers=1, scale=4096.0)
        summary = result.to_dict()["summary"]
        assert "placement.hoarded_bytes" in summary
        assert "placement.hit_rate" in summary
        # grouped per policy, aggregated across the two seeds
        groups = summary["placement.hoarded_bytes"]
        assert all(stats["n"] == 2 for stats in groups.values())
        assert len(groups) == 2
