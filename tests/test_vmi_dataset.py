"""Dataset-level tests: census, totals, scale invariance, stream shapes."""

import numpy as np
import pytest

from repro.common.units import GiB
from repro.vmi import (
    AZURE_CENSUS,
    PAPER_TOTALS,
    AzureCommunityDataset,
    DatasetConfig,
    block_view,
    cache_stream,
)

TINY = 1 / 2048
SMALL = 1 / 512


@pytest.fixture(scope="module")
def tiny():
    return AzureCommunityDataset(DatasetConfig(scale=TINY))


class TestCensus:
    def test_reproduces_table2(self, tiny):
        census = tiny.census()
        for name, count in AZURE_CENSUS.items():
            assert census[name] == count

    def test_607_images(self, tiny):
        assert len(tiny) == 607

    def test_ids_unique_and_sequential(self, tiny):
        ids = [spec.image_id for spec in tiny]
        assert ids == list(range(607))


class TestTotals:
    def test_totals_match_paper_at_scale(self, tiny):
        assert tiny.total_raw_bytes == pytest.approx(
            PAPER_TOTALS["raw_bytes"] * TINY, rel=0.02
        )
        assert tiny.total_nonzero_bytes == pytest.approx(
            PAPER_TOTALS["nonzero_bytes"] * TINY, rel=0.02
        )
        assert tiny.total_cache_bytes == pytest.approx(
            PAPER_TOTALS["cache_bytes"] * TINY, rel=0.02
        )

    def test_scaled_up_reporting(self, tiny):
        scaled = tiny.scaled_up(tiny.total_cache_bytes)
        assert scaled == pytest.approx(78.5 * GiB, rel=0.02)

    def test_per_image_ordering(self, tiny):
        for spec in tiny:
            assert spec.cache_bytes <= spec.nonzero_bytes <= spec.raw_bytes


class TestDeterminism:
    def test_same_config_same_dataset(self):
        a = AzureCommunityDataset(DatasetConfig(scale=TINY))
        b = AzureCommunityDataset(DatasetConfig(scale=TINY))
        assert [s.seed for s in a] == [s.seed for s in b]
        assert [s.cache_bytes for s in a] == [s.cache_bytes for s in b]

    def test_different_seed_different_sizes(self):
        a = AzureCommunityDataset(DatasetConfig(scale=TINY, seed=1))
        b = AzureCommunityDataset(DatasetConfig(scale=TINY, seed=2))
        assert [s.cache_bytes for s in a] != [s.cache_bytes for s in b]


def _cache_dedup(ds, block_size):
    views = [block_view(cache_stream(s), block_size) for s in ds]
    sigs = np.concatenate([v.signatures[~v.is_hole] for v in views])
    return sigs.size / np.unique(sigs).size


class TestPaperShapes:
    """The headline mechanisms must emerge at any scale."""

    @pytest.fixture(scope="class")
    def small(self):
        return AzureCommunityDataset(DatasetConfig(scale=SMALL))

    def test_cache_dedup_decreases_with_block_size(self, small):
        d1 = _cache_dedup(small, 1024)
        d16 = _cache_dedup(small, 16 * 1024)
        d128 = _cache_dedup(small, 128 * 1024)
        assert d1 >= d16 >= d128 > 1.0

    def test_cache_dedup_levels(self, small):
        """Figure 2 bands (loose: small scale thins the statistics)."""
        assert 2.5 < _cache_dedup(small, 1024) < 7.0
        assert 1.3 < _cache_dedup(small, 128 * 1024) < 3.5

    def test_dedup_ratio_roughly_scale_invariant(self, small):
        """Dedup is an intensive metric: doubling the scale moves it by well
        under 2x (finite-size effects shrink as caches grow relative to
        mutation regions, so only a loose band holds at test-sized scales)."""
        bigger = AzureCommunityDataset(DatasetConfig(scale=2 * SMALL))
        a = _cache_dedup(small, 4096)
        b = _cache_dedup(bigger, 4096)
        assert abs(a - b) / a < 0.40

    def test_caches_dedup_better_than_images(self, small):
        from repro.vmi import image_stream

        sample = small.images[::13]  # subsample for speed
        img_views = [block_view(image_stream(s), 16 * 1024) for s in sample]
        img_sigs = np.concatenate([v.signatures[~v.is_hole] for v in img_views])
        img_dedup = img_sigs.size / np.unique(img_sigs).size
        cache_views = [block_view(cache_stream(s), 16 * 1024) for s in sample]
        c_sigs = np.concatenate([v.signatures[~v.is_hole] for v in cache_views])
        cache_dedup = c_sigs.size / np.unique(c_sigs).size
        assert cache_dedup > img_dedup


class TestBlockView:
    def test_signatures_count(self, tiny):
        spec = tiny.images[0]
        stream = cache_stream(spec)
        view = block_view(stream, 4096)
        assert view.n_blocks == -(-stream.size // 4)

    def test_class_fractions_rows_sum_to_one_for_dense_blocks(self, tiny):
        stream = cache_stream(tiny.images[0])
        view = block_view(stream, 4096)
        dense = view.class_fractions[:-1]  # last block may be padded
        assert np.allclose(dense.sum(axis=1), 1.0)

    def test_hole_detection(self):
        stream = np.zeros(8, dtype=np.uint64)
        view = block_view(stream, 4096)
        assert view.is_hole.all()
        assert view.nonzero_lsize == 0

    def test_short_tail_lsize(self):
        stream = np.full(5, (1 << 3) | 1, dtype=np.uint64)
        view = block_view(stream, 4096)
        assert view.lsizes[-1] == 1024
        assert view.lsizes[0] == 4096

    def test_rejects_non_grain_multiple(self):
        with pytest.raises(ValueError):
            block_view(np.zeros(4, dtype=np.uint64), 1500)

    def test_psizes_capped_by_lsize(self, tiny):
        from repro.vmi import make_estimator

        est = make_estimator("gzip6", (4096,), samples_per_point=2)
        stream = cache_stream(tiny.images[0])
        view = block_view(stream, 4096)
        ps = view.psizes(est)
        assert (ps <= view.lsizes).all()
        assert (ps[~view.is_hole] > 0).all()
