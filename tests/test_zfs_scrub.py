"""Tests for the pool scrubber — and property tests using it as an oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.zfs import ZPool, scrub


def block(tag: int, size: int = 4096) -> bytes:
    seed = (tag % 250 + 1).to_bytes(4, "little") * 16
    return (seed * (size // len(seed) + 1))[:size]


class TestCleanPools:
    def test_empty_pool_is_clean(self):
        report = scrub(ZPool(capacity=1 << 20))
        assert report.clean
        assert report.datasets == 0

    def test_simple_pool_is_clean(self):
        pool = ZPool(capacity=64 << 20)
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_file("f", block(1) + block(2))
        ds.snapshot("s1")
        ds.write_block("f", 0, block(3))
        report = scrub(pool)
        assert report.clean
        assert report.blocks_checked >= 4
        assert report.payloads_verified >= 2

    def test_virtual_pool_is_clean(self):
        pool = ZPool(capacity=64 << 20, store_payloads=False)
        ds = pool.create_dataset("d", record_size=4096, dedup=True)
        ds.write_file_virtual("f", [(7, 4096, 512, False), (8, 4096, 512, False)])
        ds.snapshot("s1")
        ds.delete_file("f")
        report = scrub(pool)
        assert report.clean

    def test_raise_if_dirty_noop_when_clean(self):
        report = scrub(ZPool(capacity=1 << 20))
        report.raise_if_dirty()


class TestCorruptionDetection:
    def test_detects_refcount_drift(self):
        pool = ZPool(capacity=64 << 20)
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        entry = next(iter(pool.ddt))
        entry.refcount += 1  # simulated accounting bug
        report = scrub(pool)
        assert not report.clean
        assert "refcount" in report.errors[0]
        with pytest.raises(StorageError):
            report.raise_if_dirty()

    def test_detects_space_drift(self):
        pool = ZPool(capacity=64 << 20)
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        pool.space._allocated += 512  # noqa: SLF001 - simulated leak
        report = scrub(pool)
        assert any("space map" in error for error in report.errors)

    def test_detects_missing_payload(self):
        pool = ZPool(capacity=64 << 20)
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        pool.zio._blockstore.clear()  # noqa: SLF001 - simulated data loss
        report = scrub(pool)
        assert any("payload" in error for error in report.errors)


class TestScrubAsOracle:
    """Scrub must stay clean through arbitrary legal op sequences — this is
    the deadlist/dedup machinery's strongest invariant check."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["write", "snap", "destroy", "delete", "wholefile"]),
                st.integers(0, 4),
                st.integers(0, 9),
            ),
            min_size=1,
            max_size=35,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_always_clean_under_legal_ops(self, ops):
        pool = ZPool(capacity=256 << 20)
        ds = pool.create_dataset("d", record_size=4096)
        serial = 0
        for op, sel, tag in ops:
            if op == "write":
                ds.write_block("f", sel, block(tag))
            elif op == "wholefile":
                ds.write_file(f"g{sel}", block(tag) + block(tag + 1))
            elif op == "snap":
                serial += 1
                ds.snapshot(f"s{serial}")
            elif op == "destroy" and ds.snapshots():
                ds.destroy_snapshot(ds.snapshots()[sel % len(ds.snapshots())].name)
            elif op == "delete" and ds.has_file("f"):
                ds.delete_file("f")
        scrub(pool).raise_if_dirty()

    @given(
        tags=st.lists(st.integers(0, 6), min_size=1, max_size=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_clean_after_replication(self, tags):
        from repro.zfs import generate_send, receive

        src_pool = ZPool(capacity=64 << 20)
        src = src_pool.create_dataset("s", record_size=4096)
        for index, tag in enumerate(tags):
            src.write_block("f", index, block(tag))
        src.snapshot("v1")
        dst_pool = ZPool(capacity=64 << 20)
        dst = dst_pool.create_dataset("d", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        scrub(src_pool).raise_if_dirty()
        scrub(dst_pool).raise_if_dirty()
