"""Tests for the pluggable event queue: heap vs calendar equivalence.

The engine's determinism contract is a total order on (time, seeded
tiebreak, seq). Any :class:`~repro.sim.EventQueue` implementation must pop
entries in exactly that order — so a calendar queue and the binary heap
must produce byte-identical simulations, which is what lets the fast core
be swapped in under the pinned experiments.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CalendarEventQueue,
    Engine,
    EventQueue,
    HeapEventQueue,
    Pipe,
    Resource,
    make_queue,
    QUEUE_KINDS,
)


def drain(queue) -> list[tuple]:
    out = []
    while len(queue):
        out.append(queue.pop())
    return out


class TestQueueContract:
    def test_kinds_and_factory(self):
        assert set(QUEUE_KINDS) == {"heap", "calendar"}
        assert isinstance(make_queue("heap"), HeapEventQueue)
        assert isinstance(make_queue("calendar"), CalendarEventQueue)
        with pytest.raises(Exception):
            make_queue("splay")

    def test_both_satisfy_protocol(self):
        for kind in QUEUE_KINDS:
            assert isinstance(make_queue(kind), EventQueue)

    @given(
        entries=st.lists(
            st.tuples(
                st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
                st.integers(0, 2**62),
                st.integers(0, 2**20),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_calendar_matches_heap_total_order(self, entries):
        heap, cal = make_queue("heap"), make_queue("calendar")
        for i, (time, tiebreak, seq) in enumerate(entries):
            key = (time, tiebreak, seq, i)
            heap.push(key)
            cal.push(key)
        assert drain(cal) == drain(heap)

    @given(
        times=st.lists(
            st.sampled_from([0.0, 0.5, 1.0, 1.0, 1.0, 2.5]), max_size=64
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_heavy_ties_pop_in_key_order(self, times):
        cal = make_queue("calendar")
        for i, time in enumerate(times):
            cal.push((time, i * 7919 % 13, i))
        assert drain(cal) == sorted(
            (time, i * 7919 % 13, i) for i, time in enumerate(times)
        )

    def test_interleaved_push_pop(self):
        heap, cal = make_queue("heap"), make_queue("calendar")
        feed = [(float(i % 5), i) for i in range(40)]
        out_h, out_c = [], []
        for j, key in enumerate(feed):
            heap.push(key)
            cal.push(key)
            if j % 3 == 2:
                out_h.append(heap.pop())
                out_c.append(cal.pop())
        out_h.extend(drain(heap))
        out_c.extend(drain(cal))
        assert out_c == out_h

    def test_peek_time(self):
        for kind in QUEUE_KINDS:
            queue = make_queue(kind)
            assert queue.peek_time() is None
            queue.push((3.0, 0, 0))
            queue.push((1.0, 0, 1))
            assert queue.peek_time() == 1.0
            queue.pop()
            assert queue.peek_time() == 3.0

    def test_calendar_handles_infinite_times(self):
        cal = make_queue("calendar")
        cal.push((float("inf"), 0, 0))
        cal.push((1.0, 0, 1))
        assert cal.pop() == (1.0, 0, 1)
        assert cal.pop() == (float("inf"), 0, 0)

    def test_calendar_resizes_under_load(self):
        cal = CalendarEventQueue()
        keys = [(float(i) * 0.001, i % 97, i) for i in range(5000)]
        for key in keys:
            cal.push(key)
        assert drain(cal) == sorted(keys)


def contended_trace(seed: int, queue: str) -> list[tuple]:
    """A mini-cluster with same-instant collisions, run on one queue kind."""
    engine = Engine(seed=seed, trace=True, queue=queue)
    pipe = Pipe(engine, 1000.0, name="link")
    cores = Resource(engine, capacity=2, name="cores")

    def vm(i):
        yield engine.timeout(float(i % 3), label=f"arrive:{i}")
        yield pipe.transfer(500, label=f"fetch:{i}")
        yield cores.request()
        yield engine.timeout(1.0, label=f"decompress:{i}")
        cores.release()

    for i in range(12):
        engine.process(vm(i), label=f"vm:{i}")
    engine.run()
    return engine.trace


class TestEngineQueueEquivalence:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_calendar_engine_bit_identical_to_heap(self, seed):
        assert contended_trace(seed, "calendar") == contended_trace(seed, "heap")

    def test_engine_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
        assert Engine().queue_kind == "calendar"
        monkeypatch.delenv("REPRO_SIM_QUEUE")
        assert Engine().queue_kind == "heap"

    def test_engine_rejects_unknown_queue(self):
        with pytest.raises(Exception):
            Engine(queue="fibonacci")

    def test_drained_reflects_pending_work(self):
        engine = Engine()
        assert engine.drained

        def proc():
            yield engine.timeout(1.0)
            yield engine.timeout(1.0)

        engine.process(proc())
        assert not engine.drained
        engine.run(until=1.5)
        assert not engine.drained  # second timeout still queued
        engine.run()
        assert engine.drained
