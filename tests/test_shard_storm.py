"""The shards experiment's contracts: shards=1 is byte-identical to the
plain storm, the grouped-vs-global blocks are shaped and consistent, the
per-shard/per-tenant families respect the node-detail cap, and sweep
merges stay byte-identical at any worker count."""

import pytest

from repro.common.errors import ConfigError
from repro.common.report import dumps_canonical
from repro.experiments import registry, shard_storm, storm_timeline
from repro.sweep import SweepSpec, run_sweep
from repro.workload import StormConfig
from repro.workload import scenarios

#: small enough for unit tests, large enough for tenants to collide
SMALL = {"nodes": 8, "vms_per_node": 2}


@pytest.fixture(scope="module")
def sharded():
    return shard_storm.run(shards=4, grouping="tenant", quota_mb=256, **SMALL)


class TestRegistration:
    def test_registered_with_params_and_metrics(self):
        exp = registry.get("shards")
        assert exp.exp_id == shard_storm.EXPERIMENT_ID
        names = {spec.name for spec in exp.params}
        assert {"shards", "grouping", "quota_mb", "nodes", "seed"} <= names
        assert "sharding.victim.delta" in exp.metrics

    def test_grouping_choices_enforced(self):
        exp = registry.get("shards")
        with pytest.raises(ConfigError, match="not in"):
            exp.validate({"grouping": "alphabetical"})


class TestUnshardedAnchor:
    def test_shards1_report_matches_storm_run(self):
        """shards=1 attaches no router: the embedded report must be
        byte-for-byte the storm experiment's at the same config."""
        one = shard_storm.run(shards=1, **SMALL)
        storm = storm_timeline.run(
            config=StormConfig(n_nodes=8, vms_per_node=2, seed=0)
        )
        assert dumps_canonical(one.report.to_dict()) == dumps_canonical(
            storm.report.to_dict()
        )
        assert one.sharding == {} and one.global_side == {}

    def test_shards1_render_names_the_baseline(self):
        one = shard_storm.run(shards=1, **SMALL)
        assert "unsharded baseline" in shard_storm.render(one)


class TestShardingBlock:
    def test_block_shape(self, sharded):
        block = sharded.sharding
        assert block["shards"] == 4 and block["grouping"] == "tenant"
        assert set(block["grouped"]["scvolume"]) == {
            "s00", "s01", "s02", "s03"
        }
        assert set(block["global"]["scvolume"]) == {"s00"}
        for stats in block["grouped"]["scvolume"].values():
            assert stats["quota_bytes"] > 0
            assert 0.0 <= stats["quota_pressure"]

    def test_tenant_entries_keyed_and_counted(self, sharded):
        grouped = sharded.sharding["grouped"]["tenants"]
        assert all(key.startswith("t") for key in grouped)
        boots = sum(entry["boots"] for entry in grouped.values())
        assert boots == sharded.report.squirrel.boots

    def test_victim_is_consistent(self, sharded):
        victim = sharded.sharding["victim"]
        assert victim["tenant"] is not None
        assert victim["delta"] == pytest.approx(
            victim["grouped_hit_rate"] - victim["global_hit_rate"]
        )
        key = f"t{victim['tenant']:02d}"
        grouped = sharded.sharding["grouped"]["tenants"][key]
        assert grouped["hit_rate"] == victim["grouped_hit_rate"]

    def test_global_side_summary(self, sharded):
        side = sharded.global_side
        assert side["boots"] == sharded.report.squirrel.boots
        assert side["latency_p95"] >= side["latency_p50"] > 0

    def test_tiny_quota_forces_evictions(self):
        result = shard_storm.run(shards=2, quota_mb=1, **SMALL)
        stats = result.sharding["grouped"]["scvolume"]
        assert sum(s["evictions"] for s in stats.values()) > 0

    def test_render_mentions_the_victim(self, sharded):
        text = shard_storm.render(sharded)
        assert "victim tenant" in text
        assert "dedup loss" in text


class TestDetailCapFold:
    def test_shard_and_tenant_families_fold(self, monkeypatch):
        """With the detail cap below the fleet/tenant count, labelled
        shard families keep exact sums through ``_other``/``_fleet``
        children instead of one series per node or tenant."""
        monkeypatch.setattr(scenarios, "METRICS_NODE_DETAIL", 2)
        result = shard_storm.run(shards=2, quota_mb=64, **SMALL)
        side = result.report.squirrel
        by_name = {f["name"]: f for f in side.metrics["instruments"]}

        tenants = {
            s["labels"]["tenant"]
            for s in by_name["squirrel_tenant_boots_total"]["samples"]
        }
        assert "_other" in tenants
        assert len(tenants) == 3  # 2 detail tenants + the fold child
        boots = sum(
            s["value"]
            for s in by_name["squirrel_tenant_boots_total"]["samples"]
        )
        assert boots == side.boots

        arc_nodes = {
            s["labels"]["node"]
            for s in by_name["zfs_shard_arc_hits_total"]["samples"]
        }
        assert "_other" in arc_nodes and len(arc_nodes) == 3

        resident_nodes = {
            s["labels"]["node"]
            for s in by_name["zfs_shard_arc_resident_bytes"]["samples"]
        }
        assert "_fleet" in resident_nodes
        assert len(resident_nodes) == 3  # 2 detail nodes + fleet aggregate
        # the tenant hit-rate gauge only carries detail children
        rates = {
            s["labels"]["tenant"]
            for s in by_name["squirrel_tenant_hit_rate"]["samples"]
        }
        assert len(rates) == 2 and "_other" not in rates

    def test_small_fleets_uncapped(self, sharded):
        side = sharded.report.squirrel
        by_name = {f["name"]: f for f in side.metrics["instruments"]}
        tenants = {
            s["labels"]["tenant"]
            for s in by_name["squirrel_tenant_boots_total"]["samples"]
        }
        assert "_other" not in tenants
        assert len(tenants) == 32  # StormConfig.n_tenants default


class TestSweepDeterminism:
    def _spec(self):
        return SweepSpec.from_grid(
            "shards",
            "shards=1,4 quota_mb=0,64",
            {"nodes": 4, "vms_per_node": 1},
        )

    def test_workers_do_not_change_bytes(self):
        serial = run_sweep(self._spec(), workers=1, scale=4096.0)
        parallel = run_sweep(self._spec(), workers=2, scale=4096.0)
        assert dumps_canonical(serial.to_dict()) == dumps_canonical(
            parallel.to_dict()
        )

    def test_summary_skips_absent_sharding_paths(self):
        result = run_sweep(self._spec(), workers=1, scale=4096.0)
        summary = result.to_dict()["summary"]
        assert "report.squirrel.latency.p95" in summary
        # sharded points contribute victim metrics; shards=1 points don't
        groups = summary["sharding.victim.delta"]
        assert groups and all("shards=4" in key for key in groups)
