"""Tests for the cache-aware VM scheduling comparison."""

import pytest

from repro.common.errors import NetworkError
from repro.core import (
    SCHEDULING_POLICIES,
    SchedulerConfig,
    generate_arrivals,
    simulate_policy,
)
from repro.vmi import AzureCommunityDataset, DatasetConfig


@pytest.fixture(scope="module")
def dataset():
    return AzureCommunityDataset(DatasetConfig(scale=1 / 2048))


@pytest.fixture(scope="module")
def events(dataset):
    return generate_arrivals(dataset, n_vms=1500, horizon_ticks=800)


class TestArrivals:
    def test_deterministic(self, dataset):
        a = generate_arrivals(dataset, n_vms=100)
        b = generate_arrivals(dataset, n_vms=100)
        assert a == b

    def test_sorted_by_start(self, events):
        starts = [e.start for e in events]
        assert starts == sorted(starts)

    def test_popularity_skewed(self, dataset, events):
        from collections import Counter

        counts = Counter(e.image_id for e in events)
        top = counts.most_common(1)[0][1]
        assert top > 5 * (len(events) / len(dataset))

    def test_durations_positive(self, events):
        assert all(e.duration >= 1 for e in events)


class TestPolicies:
    def test_unknown_policy_rejected(self, dataset, events):
        with pytest.raises(NetworkError):
            simulate_policy(dataset, events, "clairvoyant")

    def test_squirrel_always_hits(self, dataset, events):
        outcome = simulate_policy(dataset, events, "squirrel")
        assert outcome.hit_rate == 1.0
        assert outcome.miss_network_bytes == 0

    def test_cache_aware_beats_random_on_hits(self, dataset, events):
        """Steering to warm nodes must pay off in hit rate..."""
        config = SchedulerConfig(cache_budget_bytes=max(
            spec.cache_bytes for spec in dataset) * 40)
        random_outcome = simulate_policy(dataset, events, "random", config)
        aware_outcome = simulate_policy(dataset, events, "cache-aware", config)
        assert aware_outcome.hit_rate > random_outcome.hit_rate

    def test_every_policy_places_the_same_demand(self, dataset, events):
        placed = {
            policy: simulate_policy(dataset, events, policy).placed +
                    simulate_policy(dataset, events, policy).rejected
            for policy in SCHEDULING_POLICIES
        }
        assert len(set(placed.values())) == 1

    def test_squirrel_balances_load_at_least_as_well(self, dataset, events):
        """Squirrel's placement is pure load-balancing; cache-aware couples
        placement to locality and cannot beat it on balance."""
        aware = simulate_policy(dataset, events, "cache-aware")
        squirrel = simulate_policy(dataset, events, "squirrel")
        assert squirrel.load_imbalance <= aware.load_imbalance + 1e-9

    def test_miss_traffic_only_for_lru_policies(self, dataset, events):
        for policy in ("random", "cache-aware"):
            outcome = simulate_policy(dataset, events, policy)
            assert outcome.miss_network_bytes > 0

    def test_outcome_accounting_consistent(self, dataset, events):
        outcome = simulate_policy(dataset, events, "random")
        assert outcome.placed + outcome.rejected == len(events)
        assert 0 <= outcome.cache_hits <= outcome.placed
