"""Unit tests for the QCOW2 CoW model."""

import pytest

from repro.boot.qcow2 import Qcow2Image
from repro.common.errors import BootError


class _CountingBacking:
    """Backing that records requests and charges a fixed per-byte cost."""

    def __init__(self, cost_per_byte=1e-9):
        self.requests: list[tuple[int, int]] = []
        self.cost = cost_per_byte

    def read_range(self, offset, length):
        self.requests.append((offset, length))
        return length * self.cost


class TestClusterRounding:
    def test_small_read_becomes_cluster_read(self):
        backing = _CountingBacking()
        img = Qcow2Image("cow", 1 << 20, backing=backing, cluster_size=65536)
        img.read_range(1000, 512)
        assert backing.requests == [(0, 65536)]

    def test_read_spanning_clusters(self):
        backing = _CountingBacking()
        img = Qcow2Image("cow", 1 << 20, backing=backing, cluster_size=65536)
        img.read_range(65536 - 100, 200)
        assert backing.requests == [(0, 2 * 65536)]

    def test_tail_cluster_clipped_to_virtual_size(self):
        backing = _CountingBacking()
        img = Qcow2Image("cow", 100_000, backing=backing, cluster_size=65536)
        img.read_range(99_000, 500)
        assert backing.requests == [(65536, 100_000 - 65536)]

    def test_out_of_bounds_read_rejected(self):
        img = Qcow2Image("cow", 1000, backing=None)
        with pytest.raises(BootError):
            img.read_range(900, 200)

    def test_bad_cluster_size_rejected(self):
        with pytest.raises(BootError):
            Qcow2Image("cow", 1000, cluster_size=3000)


class TestCopyOnWrite:
    def test_written_clusters_not_fetched(self):
        backing = _CountingBacking()
        img = Qcow2Image("cow", 1 << 20, backing=backing, cluster_size=65536)
        img.write_range(0, 65536)
        img.read_range(0, 4096)
        assert backing.requests == []

    def test_write_allocates_clusters(self):
        img = Qcow2Image("cow", 1 << 20, cluster_size=65536)
        img.write_range(0, 100_000)
        assert img.allocated_clusters == 2

    def test_mixed_allocated_and_missing(self):
        backing = _CountingBacking()
        img = Qcow2Image("cow", 1 << 20, backing=backing, cluster_size=65536)
        img.write_range(65536, 65536)  # cluster 1 local
        img.read_range(0, 3 * 65536)  # clusters 0,1,2
        assert backing.requests == [(0, 65536), (2 * 65536, 65536)]


class TestCopyOnRead:
    def test_cor_populates_cache(self):
        backing = _CountingBacking()
        img = Qcow2Image(
            "cache", 1 << 20, backing=backing, cluster_size=65536, copy_on_read=True
        )
        img.read_range(0, 4096)
        assert img.allocated_clusters == 1
        img.read_range(0, 4096)  # warm now
        assert len(backing.requests) == 1

    def test_cor_charges_write_cost(self):
        backing = _CountingBacking(cost_per_byte=0.0)
        cold = Qcow2Image(
            "cache",
            1 << 20,
            backing=backing,
            cluster_size=65536,
            copy_on_read=True,
            local_write_cost_s_per_byte=1e-6,
        )
        elapsed = cold.read_range(0, 4096)
        assert elapsed == pytest.approx(65536 * 1e-6)
        assert cold.cor_bytes == 65536

    def test_warm_fraction(self):
        img = Qcow2Image("cache", 1 << 20, cluster_size=65536, copy_on_read=True,
                         backing=_CountingBacking())
        img.read_range(0, 2 * 65536)
        assert img.warm_fraction(4 * 65536) == pytest.approx(0.5)

    def test_is_warm_for(self):
        img = Qcow2Image("cache", 1 << 20, cluster_size=65536,
                         backing=_CountingBacking(), copy_on_read=True)
        img.read_range(0, 65536)
        assert img.is_warm_for(0, 65536)
        assert not img.is_warm_for(65536, 65536)


class TestChains:
    def test_three_level_chain(self):
        """CoW -> cache (CoR) -> VMI: the Squirrel boot chain of Figure 7."""
        vmi = _CountingBacking()
        cache = Qcow2Image("cache", 1 << 20, backing=vmi, cluster_size=65536,
                           copy_on_read=True)
        cow = Qcow2Image("cow", 1 << 20, backing=cache, cluster_size=65536)
        cow.read_range(0, 4096)  # cold: goes through to VMI
        assert len(vmi.requests) == 1
        cow2 = Qcow2Image("cow2", 1 << 20, backing=cache, cluster_size=65536)
        cow2.read_range(0, 4096)  # warm: served by cache
        assert len(vmi.requests) == 1

    def test_writes_stay_in_cow(self):
        vmi = _CountingBacking()
        cache = Qcow2Image("cache", 1 << 20, backing=vmi, cluster_size=65536,
                           copy_on_read=True)
        cow = Qcow2Image("cow", 1 << 20, backing=cache, cluster_size=65536)
        cow.write_range(0, 4096)
        assert cache.allocated_clusters == 0
        assert cow.allocated_clusters == 1
