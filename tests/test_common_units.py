"""Unit tests for repro.common.units."""

import pytest

from repro.common import units


class TestConstants:
    def test_analysis_block_sizes_span_1k_to_1m(self):
        assert units.ANALYSIS_BLOCK_SIZES[0] == 1024
        assert units.ANALYSIS_BLOCK_SIZES[-1] == 1024 * 1024
        assert len(units.ANALYSIS_BLOCK_SIZES) == 11

    def test_zfs_block_sizes_span_4k_to_128k(self):
        assert units.ZFS_BLOCK_SIZES == (4096, 8192, 16384, 32768, 65536, 131072)

    def test_boot_block_sizes_span_1k_to_128k(self):
        assert units.BOOT_BLOCK_SIZES[0] == 1024
        assert units.BOOT_BLOCK_SIZES[-1] == 128 * 1024

    def test_paper_selected_sizes(self):
        assert units.SQUIRREL_BLOCK_SIZE == 64 * units.KiB
        assert units.ZFS_DEFAULT_BLOCK_SIZE == 128 * units.KiB
        assert units.QCOW2_CLUSTER_SIZE == 64 * units.KiB

    def test_all_sweep_sizes_are_powers_of_two(self):
        for size in units.ANALYSIS_BLOCK_SIZES + units.ZFS_BLOCK_SIZES:
            assert units.is_power_of_two(size)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 40])
    def test_powers(self, value):
        assert units.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1023, 1025])
    def test_non_powers(self, value):
        assert not units.is_power_of_two(value)


class TestValidateBlockSize:
    def test_valid_returns_value(self):
        assert units.validate_block_size(65536) == 65536

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            units.validate_block_size(3000)

    def test_rejects_sub_grain(self):
        with pytest.raises(ValueError, match="grain"):
            units.validate_block_size(512)

    def test_custom_grain(self):
        assert units.validate_block_size(512, grain=512) == 512


class TestCeilDivAlign:
    def test_ceil_div_exact(self):
        assert units.ceil_div(8, 4) == 2

    def test_ceil_div_rounds_up(self):
        assert units.ceil_div(9, 4) == 3

    def test_ceil_div_zero_numerator(self):
        assert units.ceil_div(0, 4) == 0

    def test_ceil_div_rejects_nonpositive_denominator(self):
        with pytest.raises(ValueError):
            units.ceil_div(4, 0)

    def test_align_up(self):
        assert units.align_up(100, 64) == 128
        assert units.align_up(128, 64) == 128


class TestFormatBytes:
    def test_bytes(self):
        assert units.format_bytes(100) == "100 B"

    def test_gigabytes(self):
        assert units.format_bytes(10 * units.GiB) == "10.0 GB"

    def test_terabytes(self):
        # the paper's headline raw dataset size
        assert units.format_bytes(16.4 * units.TiB) == "16.4 TB"


class TestParseSize:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("64K", 64 * units.KiB),
            ("64 KB", 64 * units.KiB),
            ("10GB", 10 * units.GiB),
            ("512", 512),
            ("1 TiB", units.TiB),
        ],
    )
    def test_parses(self, text, expected):
        assert units.parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "GB", "12XB"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            units.parse_size(text)
