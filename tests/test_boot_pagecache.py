"""Unit tests for the host page-cache model."""

import pytest

from repro.boot.pagecache import PAGE_SIZE, PageCache


class TestAccess:
    def test_first_access_misses_whole_range(self):
        pc = PageCache(1 << 20)
        missing = pc.access(1, 0, 8192)
        assert missing == [(0, 8192)]

    def test_second_access_hits(self):
        pc = PageCache(1 << 20)
        pc.access(1, 0, 8192)
        assert pc.access(1, 0, 8192) == []
        assert pc.hits == 2

    def test_partial_overlap_returns_only_missing(self):
        pc = PageCache(1 << 20)
        pc.access(1, 0, PAGE_SIZE)
        missing = pc.access(1, 0, 3 * PAGE_SIZE)
        assert missing == [(PAGE_SIZE, 2 * PAGE_SIZE)]

    def test_disjoint_missing_ranges_coalesced_separately(self):
        pc = PageCache(1 << 20)
        pc.access(1, PAGE_SIZE, PAGE_SIZE)  # page 1 cached
        missing = pc.access(1, 0, 3 * PAGE_SIZE)
        assert missing == [(0, PAGE_SIZE), (2 * PAGE_SIZE, PAGE_SIZE)]

    def test_files_are_independent(self):
        pc = PageCache(1 << 20)
        pc.access(1, 0, PAGE_SIZE)
        assert pc.access(2, 0, PAGE_SIZE) == [(0, PAGE_SIZE)]

    def test_zero_length(self):
        pc = PageCache(1 << 20)
        assert pc.access(1, 0, 0) == []

    def test_unaligned_range_touches_straddled_pages(self):
        pc = PageCache(1 << 20)
        pc.access(1, PAGE_SIZE - 1, 2)  # straddles pages 0 and 1
        assert pc.contains(1, 0)
        assert pc.contains(1, PAGE_SIZE)


class TestEviction:
    def test_lru_eviction(self):
        pc = PageCache(2 * PAGE_SIZE)
        pc.access(1, 0, PAGE_SIZE)
        pc.access(1, PAGE_SIZE, PAGE_SIZE)
        pc.access(1, 2 * PAGE_SIZE, PAGE_SIZE)  # evicts page 0
        assert not pc.contains(1, 0)
        assert pc.contains(1, PAGE_SIZE)

    def test_access_refreshes_lru(self):
        pc = PageCache(2 * PAGE_SIZE)
        pc.access(1, 0, PAGE_SIZE)
        pc.access(1, PAGE_SIZE, PAGE_SIZE)
        pc.access(1, 0, PAGE_SIZE)  # refresh page 0
        pc.access(1, 2 * PAGE_SIZE, PAGE_SIZE)  # evicts page 1
        assert pc.contains(1, 0)
        assert not pc.contains(1, PAGE_SIZE)

    def test_resident_bytes_bounded(self):
        pc = PageCache(8 * PAGE_SIZE)
        for i in range(100):
            pc.access(1, i * PAGE_SIZE, PAGE_SIZE)
        assert pc.resident_bytes <= 8 * PAGE_SIZE

    def test_drop(self):
        pc = PageCache(1 << 20)
        pc.access(1, 0, PAGE_SIZE)
        pc.drop()
        assert not pc.contains(1, 0)

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            PageCache(100)
