"""Quality gates: documentation and API-surface invariants.

These keep the library honest as it grows: every public module, class, and
function carries a docstring, and every package ``__all__`` names things
that actually exist.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro.common",
    "repro.codecs",
    "repro.zfs",
    "repro.disk",
    "repro.vmi",
    "repro.boot",
    "repro.net",
    "repro.core",
    "repro.placement",
    "repro.analysis",
    "repro.experiments",
    "repro.metrics",
    "repro.sweep",
    "repro.obs",
    "repro.slo",
]


def _all_modules():
    modules = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            modules.append(importlib.import_module(f"{package_name}.{info.name}"))
    return modules


ALL_MODULES = _all_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        undocumented = []
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-export: documented at its home
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestAllExports:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_dunder_all_resolves(self, module):
        exported = getattr(module, "__all__", None)
        if exported is None:
            return
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__: {name}"


class TestVersion:
    def test_version_matches_pyproject(self):
        pyproject = (
            pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        ).read_text()
        assert f'version = "{repro.__version__}"' in pyproject
