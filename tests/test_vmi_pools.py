"""Unit tests for grain pools and master layouts."""

import numpy as np

from repro.vmi.content import PoolKind
from repro.vmi.distro import Release
from repro.vmi.pools import master_grains, package_pool_grains, private_grains


def rel(family="ubuntu", name="12.04", share=0.5, run=6):
    return Release(family, name, share, run)


class TestMasterGrains:
    def test_deterministic(self):
        a = master_grains(rel(), 0, 1000, kind=PoolKind.BOOT)
        b = master_grains(rel(), 0, 1000, kind=PoolKind.BOOT)
        assert np.array_equal(a, b)

    def test_windowing_consistent(self):
        """Any sub-window equals the same slice of a bigger window (lazy pool)."""
        whole = master_grains(rel(), 0, 1000, kind=PoolKind.BOOT)
        window = master_grains(rel(), 200, 300, kind=PoolKind.BOOT)
        assert np.array_equal(whole[200:500], window)

    def test_sibling_releases_share_the_configured_fraction(self):
        a = master_grains(rel(name="12.04"), 0, 50_000, kind=PoolKind.BOOT)
        b = master_grains(rel(name="12.10"), 0, 50_000, kind=PoolKind.BOOT)
        shared = (a == b).mean()
        assert 0.4 < shared < 0.6  # family_share = 0.5

    def test_zero_share_releases_disjoint(self):
        a = master_grains(rel(name="a", share=0.0), 0, 20_000, kind=PoolKind.BOOT)
        b = master_grains(rel(name="b", share=0.0), 0, 20_000, kind=PoolKind.BOOT)
        assert not np.intersect1d(a, b).size

    def test_different_families_disjoint(self):
        a = master_grains(rel(family="ubuntu"), 0, 20_000, kind=PoolKind.BOOT)
        b = master_grains(rel(family="debian"), 0, 20_000, kind=PoolKind.BOOT)
        assert not np.intersect1d(a, b).size

    def test_sharing_happens_in_runs(self):
        """Shared stretches are runs of ~share_run_grains, not iid grains —
        the property that confines cross-release dedup to small blocks."""
        a = master_grains(rel(run=6), 0, 60_000, kind=PoolKind.BOOT)
        b = master_grains(rel(name="12.10", run=6), 0, 60_000, kind=PoolKind.BOOT)
        match = a == b
        # count transitions; iid matching would give ~2*p*(1-p)*n transitions,
        # runs of 6 give ~1/6 of that
        transitions = int(np.abs(np.diff(match.astype(np.int8))).sum())
        iid_expected = 2 * match.mean() * (1 - match.mean()) * match.size
        assert transitions < 0.5 * iid_expected

    def test_boot_and_base_kinds_disjoint(self):
        boot = master_grains(rel(), 0, 10_000, kind=PoolKind.BOOT)
        base = master_grains(rel(), 0, 10_000, kind=PoolKind.BASE)
        assert not np.intersect1d(boot, base).size

    def test_empty_window(self):
        assert master_grains(rel(), 0, 0, kind=PoolKind.BOOT).size == 0

    def test_no_hole_ids(self):
        grains = master_grains(rel(), 0, 100_000, kind=PoolKind.BASE)
        assert (grains != 0).all()


class TestPackagePool:
    def test_same_offsets_same_grains(self):
        offs = np.arange(100, 200, dtype=np.uint64)
        assert np.array_equal(package_pool_grains(offs), package_pool_grains(offs))

    def test_two_images_drawing_same_payload_share(self):
        offs = np.arange(0, 64, dtype=np.uint64)
        a = package_pool_grains(offs)
        b = package_pool_grains(offs)
        assert np.array_equal(a, b)


class TestPrivateGrains:
    def test_distinct_images_disjoint(self):
        a = private_grains(1, "user", 10_000, kind=PoolKind.USER)
        b = private_grains(2, "user", 10_000, kind=PoolKind.USER)
        assert not np.intersect1d(a, b).size

    def test_distinct_regions_disjoint(self):
        a = private_grains(1, "user", 10_000, kind=PoolKind.USER)
        b = private_grains(1, "boot-mut", 10_000, kind=PoolKind.BOOT)
        assert not np.intersect1d(a, b).size

    def test_start_offset_windows(self):
        whole = private_grains(1, "user", 100, kind=PoolKind.USER)
        tail = private_grains(1, "user", 50, kind=PoolKind.USER, start=50)
        assert np.array_equal(whole[50:], tail)

    def test_empty(self):
        assert private_grains(1, "user", 0, kind=PoolKind.USER).size == 0
