"""Unit tests for the striped+replicated parallel FS."""

import pytest

from repro.common.errors import NetworkError
from repro.net import GlusterVolume, Node, NodeKind, TransferLedger


def storage_nodes(n=4):
    return [Node(f"st{i}", NodeKind.STORAGE) for i in range(n)]


@pytest.fixture
def volume():
    ledger = TransferLedger()
    return GlusterVolume(storage_nodes(), stripe_count=2, replica_count=2,
                         ledger=ledger)


class TestConfiguration:
    def test_paper_configuration(self, volume):
        """Section 4.4: two levels of striping, two of replication, 4 nodes."""
        assert len(volume.groups) == 2
        assert all(len(g) == 2 for g in volume.groups)

    def test_node_count_must_match(self):
        with pytest.raises(NetworkError, match="needs"):
            GlusterVolume(storage_nodes(3), stripe_count=2, replica_count=2)

    def test_compute_nodes_rejected(self):
        nodes = storage_nodes(3) + [Node("c0", NodeKind.COMPUTE)]
        with pytest.raises(NetworkError, match="not a storage node"):
            GlusterVolume(nodes, stripe_count=2, replica_count=2)


class TestNamespace:
    def test_create_and_size(self, volume):
        volume.create_file("vmi-1", 1 << 30)
        assert volume.has_file("vmi-1")
        assert volume.file_size("vmi-1") == 1 << 30

    def test_duplicate_rejected(self, volume):
        volume.create_file("vmi-1", 100)
        with pytest.raises(NetworkError):
            volume.create_file("vmi-1", 100)

    def test_upload_records_replicated_traffic(self, volume):
        volume.create_file("vmi-1", 1 << 20, writer="uploader")
        # stripe share of each group is size/2, written to 2 replicas each
        assert volume.ledger.bytes_out_of("uploader") == 2 * (1 << 20)

    def test_missing_file(self, volume):
        with pytest.raises(NetworkError):
            volume.file_size("nope")


class TestReads:
    def test_read_records_compute_ingress(self, volume):
        volume.create_file("vmi-1", 1 << 20)
        moved = volume.read("vmi-1", 0, 256 * 1024, reader="c0")
        assert moved == 256 * 1024
        assert volume.ledger.bytes_into("c0") == 256 * 1024

    def test_reads_split_on_stripe_boundaries(self, volume):
        volume.create_file("vmi-1", 1 << 20)
        volume.read("vmi-1", 0, 256 * 1024, reader="c0")  # two stripe units
        # both replica groups must have served one unit each
        sources = {t.src for t in volume.ledger.transfers}
        assert len(sources) == 2

    def test_replica_round_robin_spreads_load(self, volume):
        volume.create_file("vmi-1", 8 << 20)
        for _ in range(8):
            volume.read("vmi-1", 0, 4 << 20, reader="c0")
        load = volume.storage_read_load()
        assert all(v > 0 for v in load.values()), f"idle replica: {load}"

    def test_read_past_end_rejected(self, volume):
        volume.create_file("vmi-1", 1000)
        with pytest.raises(NetworkError):
            volume.read("vmi-1", 900, 200, reader="c0")

    def test_read_unknown_file(self, volume):
        with pytest.raises(NetworkError):
            volume.read("nope", 0, 10, reader="c0")


class TestServedAccounting:
    """The O(1) served tallies must agree with the ledger — including on
    the degraded path, where survivors absorb a dead brick's ranges."""

    def test_healthy_path_tallies_match_ledger(self, volume):
        volume.create_file("vmi-1", 4 << 20)
        volume.read("vmi-1", 0, 2 << 20, reader="c0")
        computed = volume.verify_served_accounting()
        assert sum(computed.values()) == 2 << 20

    def test_degraded_reads_route_onto_survivor_once(self, volume):
        volume.create_file("vmi-1", 4 << 20)
        dead = volume.groups[0][0].name
        survivor = volume.groups[0][1].name
        volume.fail_node(dead)
        volume.read("vmi-1", 0, 2 << 20, reader="c0")
        # group 0's ranges all land on the survivor, exactly once
        assert volume.served_bytes(dead) == 0
        assert volume.served_bytes(survivor) == 1 << 20
        computed = volume.verify_served_accounting()
        assert sum(computed.values()) == 2 << 20

    def test_restore_rejoins_the_rotation(self, volume):
        volume.create_file("vmi-1", 8 << 20)
        dead = volume.groups[0][0].name
        volume.fail_node(dead)
        volume.read("vmi-1", 0, 4 << 20, reader="c0")
        volume.restore_node(dead)
        for _ in range(4):
            volume.read("vmi-1", 0, 4 << 20, reader="c0")
        assert volume.served_bytes(dead) > 0
        volume.verify_served_accounting()

    def test_upload_traffic_never_counts_as_service(self, volume):
        volume.create_file("vmi-1", 1 << 20, writer="uploader")
        volume.read("vmi-1", 0, 256 * 1024, reader="c0")
        computed = volume.verify_served_accounting()
        assert sum(computed.values()) == 256 * 1024

    def test_non_read_storage_traffic_excluded(self, volume):
        """Storage-sourced ledger records that bypass the bricks (placement
        seeding, snapshot multicast, peer redirects) must not count."""
        volume.create_file("vmi-1", 1 << 20)
        volume.read("vmi-1", 0, 256 * 1024, reader="c0")
        brick = volume.groups[0][0].name
        volume.ledger.record(brick, "c1", 999, "placement-seed")
        volume.ledger.record("c2", "c1", 999, "peer-redirect")
        computed = volume.verify_served_accounting()
        assert sum(computed.values()) == 256 * 1024

    def test_divergence_is_detected(self, volume):
        volume.create_file("vmi-1", 1 << 20)
        volume.read("vmi-1", 0, 256 * 1024, reader="c0")
        # a stray record under a read purpose fakes brick service
        brick = volume.groups[0][0].name
        volume.ledger.record(brick, "c9", 123, "boot-read")
        with pytest.raises(NetworkError, match="diverge"):
            volume.verify_served_accounting()
