"""Tests for the command-line experiment runner."""

import pytest

from repro.__main__ import ALIASES, EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_every_paper_artifact_is_reachable(self):
        """Every table/figure id of the paper's evaluation resolves."""
        ids = {"tab01", "tab02", "tab03", "tab04"} | {
            f"fig{n:02d}" for n in (2, 3, 4, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)
        }
        reachable = set(EXPERIMENTS) | set(ALIASES)
        assert ids <= reachable

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99", "--scale", "4096"])

    def test_runs_single_experiment(self, capsys):
        assert main(["tab02", "--scale", "4096", "--quick", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_alias_resolution(self, capsys):
        assert main(["tab03", "--scale", "4096", "--quick", "16"]) == 0
        assert "Table 3" in capsys.readouterr().out
