"""Tests for the command-line experiment runner."""

import pytest

from repro.__main__ import ALIASES, EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_every_paper_artifact_is_reachable(self):
        """Every table/figure id of the paper's evaluation resolves."""
        ids = {"tab01", "tab02", "tab03", "tab04"} | {
            f"fig{n:02d}" for n in (2, 3, 4, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)
        }
        reachable = set(EXPERIMENTS) | set(ALIASES)
        assert ids <= reachable

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99", "--scale", "4096"])

    def test_runs_single_experiment(self, capsys):
        assert main(["tab02", "--scale", "4096", "--quick", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_alias_resolution(self, capsys):
        assert main(["tab03", "--scale", "4096", "--quick", "16"]) == 0
        assert "Table 3" in capsys.readouterr().out


class TestExportDirValidation:
    """Bad --metrics/--store/--out targets fail up front, naming the flag."""

    def test_bad_metrics_dir_fails_before_running(self, capsys):
        with pytest.raises(SystemExit):
            main(["storm", "--metrics", "/proc/nope/run"])
        err = capsys.readouterr().err
        assert "--metrics" in err and "/proc/nope/run" in err

    def test_bad_store_dir_fails_before_sweeping(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit):
            main([
                "sweep", "storm", "--grid", "seed=0..1",
                "--store", "/proc/nope/results",
            ])
        err = capsys.readouterr().err
        assert "--store" in err

    def test_bad_out_dir_fails_before_sweeping(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "sweep", "storm", "--grid", "seed=0..1",
                "--out", "/proc/nope/out",
            ])
        err = capsys.readouterr().err
        assert "--out" in err

    def test_good_metrics_dir_is_created_up_front(self, tmp_path, capsys):
        target = tmp_path / "deep" / "run"
        assert main([
            "storm", "--nodes", "2", "--vms-per-node", "1",
            "--scale", "4096", "--metrics", str(target),
        ]) == 0
        capsys.readouterr()
        assert (target / "report.json").exists()
