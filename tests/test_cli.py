"""Tests for the command-line experiment runner."""

import pytest

from repro.__main__ import ALIASES, EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_every_paper_artifact_is_reachable(self):
        """Every table/figure id of the paper's evaluation resolves."""
        ids = {"tab01", "tab02", "tab03", "tab04"} | {
            f"fig{n:02d}" for n in (2, 3, 4, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)
        }
        reachable = set(EXPERIMENTS) | set(ALIASES)
        assert ids <= reachable

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99", "--scale", "4096"])

    def test_runs_single_experiment(self, capsys):
        assert main(["tab02", "--scale", "4096", "--quick", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_alias_resolution(self, capsys):
        assert main(["tab03", "--scale", "4096", "--quick", "16"]) == 0
        assert "Table 3" in capsys.readouterr().out


class TestExportDirValidation:
    """Bad --metrics/--store/--out targets fail up front, naming the flag."""

    def test_bad_metrics_dir_fails_before_running(self, capsys):
        with pytest.raises(SystemExit):
            main(["storm", "--metrics", "/proc/nope/run"])
        err = capsys.readouterr().err
        assert "--metrics" in err and "/proc/nope/run" in err

    def test_bad_store_dir_fails_before_sweeping(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit):
            main([
                "sweep", "storm", "--grid", "seed=0..1",
                "--store", "/proc/nope/results",
            ])
        err = capsys.readouterr().err
        assert "--store" in err

    def test_bad_out_dir_fails_before_sweeping(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "sweep", "storm", "--grid", "seed=0..1",
                "--out", "/proc/nope/out",
            ])
        err = capsys.readouterr().err
        assert "--out" in err

    def test_good_metrics_dir_is_created_up_front(self, tmp_path, capsys):
        target = tmp_path / "deep" / "run"
        assert main([
            "storm", "--nodes", "2", "--vms-per-node", "1",
            "--scale", "4096", "--metrics", str(target),
        ]) == 0
        capsys.readouterr()
        assert (target / "report.json").exists()


STORM_FAST = [
    "storm", "--nodes", "2", "--vms-per-node", "1",
    "--scale", "4096", "--json",
]


class TestProgressAndRuntime:
    """--progress and the runtime profiler are stderr/side-file only:
    canonical stdout stays byte-identical with them enabled."""

    def test_progress_leaves_json_stdout_byte_identical(self, capsys):
        assert main(STORM_FAST) == 0
        plain = capsys.readouterr()
        assert main(STORM_FAST + ["--progress"]) == 0
        progressed = capsys.readouterr()
        assert progressed.out == plain.out
        assert "[runtime]" in plain.err and "[runtime]" in progressed.err

    def test_sweep_progress_leaves_json_stdout_byte_identical(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_SCALE", "4096")
        argv = [
            "sweep", "storm", "--grid", "seed=0..1",
            "--set", "nodes=2", "--set", "vms_per_node=1", "--json",
        ]
        assert main(argv) == 0
        plain = capsys.readouterr()
        assert main(argv + ["--progress"]) == 0
        progressed = capsys.readouterr()
        assert progressed.out == plain.out
        assert "[progress] sweep 2/2 points" in progressed.err
        assert "[progress]" not in plain.err

    def test_metrics_run_writes_runtime_json_next_to_exports(
        self, tmp_path, capsys
    ):
        import json

        target = tmp_path / "run"
        assert main(STORM_FAST[:-1] + ["--metrics", str(target)]) == 0
        capsys.readouterr()
        block = json.loads((target / "runtime.json").read_text())
        assert block["schema"] == "repro.runtime/1"
        assert block["engine"]["events"] > 0
        # the scenario's phase timers came through the active profiler
        assert any(name.startswith("storm.") for name in block["phases"])


class TestSloCli:
    def _write(self, path, payload):
        import json

        path.write_text(json.dumps(payload))
        return str(path)

    def test_check_passes_and_fails_on_threshold(self, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text(
            '[[slo]]\nmetric = "latency.p99"\nmax = 10.0\n'
        )
        good = self._write(tmp_path / "good.json", {"latency": {"p99": 4.0}})
        bad = self._write(tmp_path / "bad.json", {"latency": {"p99": 40.0}})
        assert main(["slo", "check", str(spec), good]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["slo", "check", str(spec), bad]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_fails_when_nothing_matches(self, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text('[[slo]]\nmetric = "gone.metric"\nmin = 1.0\n')
        payload = self._write(tmp_path / "r.json", {"latency": {"p99": 1.0}})
        assert main(["slo", "check", str(spec), payload]) == 1
        assert "no value matched" in capsys.readouterr().out

    def test_check_json_verdicts_are_machine_readable(self, tmp_path, capsys):
        import json

        spec = tmp_path / "slo.json"
        spec.write_text(
            json.dumps({"slo": [{"metric": "latency.p99", "max": 10.0}]})
        )
        payload = self._write(tmp_path / "r.json", {"latency": {"p99": 4.0}})
        assert main(["slo", "check", str(spec), payload, "--json"]) == 0
        verdicts = json.loads(capsys.readouterr().out)
        assert verdicts["ok"] is True
        assert verdicts["verdicts"][0]["value"] == 4.0

    def test_diff_flags_regressions_by_direction(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json",
            {"engine_events_per_s": 100.0, "engine_elapsed_s": 1.0},
        )
        worse = self._write(
            tmp_path / "worse.json",
            {"engine_events_per_s": 50.0, "engine_elapsed_s": 1.0},
        )
        better = self._write(
            tmp_path / "better.json",
            {"engine_events_per_s": 200.0, "engine_elapsed_s": 0.5},
        )
        assert main(["slo", "diff", old, worse, "--tolerance", "25%"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["slo", "diff", old, better, "--tolerance", "25%"]) == 0
        assert "improved" in capsys.readouterr().out

    def test_diff_metric_filter_ignores_other_leaves(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json", {"rate": 100.0, "rss_bytes": 100.0}
        )
        new = self._write(
            tmp_path / "new.json", {"rate": 99.0, "rss_bytes": 900.0}
        )
        assert main([
            "slo", "diff", old, new, "--tolerance", "5%", "--metric", "rate",
        ]) == 0
        capsys.readouterr()
        assert main(["slo", "diff", old, new, "--tolerance", "5%"]) == 1
