"""Fault injection: preemption semantics, degraded reads, rejoin catch-up,
and deterministic recovery reporting."""

import json

import pytest

from repro.common.errors import ConfigError, NetworkError, SimulationError
from repro.core import IaaSCluster, Squirrel
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net import GlusterVolume, Node, NodeKind, TransferLedger
from repro.sim import Engine, Interrupted, Pipe, Resource, Timeline
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator
from repro.workload import StormConfig, TimedSquirrel, boot_storm

BLOCK = 65536


# -- fault plans ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_round_trips(self):
        text = "crash:compute1@40+30,flap:compute2@50+10,brick:storage0@60+20"
        plan = FaultPlan.parse(text)
        assert plan.render() == text
        assert [f.kind for f in plan] == [
            FaultKind.NODE_CRASH, FaultKind.LINK_FLAP, FaultKind.BRICK_FAIL,
        ]

    def test_specs_sorted_by_start_time(self):
        plan = FaultPlan.parse("flap:b@9+1,crash:a@3+1")
        assert [f.at_s for f in plan] == [3.0, 9.0]

    @pytest.mark.parametrize(
        "bad",
        ["", "explode:compute1@4+5", "crash:compute1@4", "crash:compute1@-1+5",
         "crash:compute1@4+0"],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.parse(bad)

    def test_exponential_is_deterministic_and_bounded(self):
        kwargs = dict(
            seed=7, horizon_s=3600.0, targets=["compute0", "compute1"],
            mtbf_s=600.0, mttr_s=60.0,
        )
        a = FaultPlan.exponential(**kwargs)
        b = FaultPlan.exponential(**kwargs)
        assert a == b
        assert len(a) > 0
        assert all(f.at_s + f.duration_s < 3600.0 for f in a)
        assert FaultPlan.exponential(**{**kwargs, "seed": 8}) != a

    def test_exponential_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            FaultPlan.exponential(seed=0, horizon_s=0, targets=["a"],
                                  mtbf_s=1, mttr_s=1)


# -- engine preemption ----------------------------------------------------------------


class TestInterrupt:
    def test_interrupt_runs_handler_at_current_yield(self):
        engine = Engine(seed=0)
        seen = []

        def worker():
            try:
                yield engine.timeout(100.0)
                seen.append("finished")
            except Interrupted as exc:
                seen.append((engine.now, exc.cause))

        proc = engine.process(worker())

        def saboteur():
            yield engine.timeout(5.0)
            proc.interrupt("node-crash")

        engine.process(saboteur())
        engine.run()
        assert seen == [(5.0, "node-crash")]

    def test_interrupted_process_can_retry(self):
        engine = Engine(seed=0)
        done_at = []

        def worker():
            for _ in range(2):
                try:
                    yield engine.timeout(10.0)
                    break
                except Interrupted:
                    continue
            done_at.append(engine.now)

        proc = engine.process(worker())

        def saboteur():
            yield engine.timeout(4.0)
            proc.interrupt()

        engine.process(saboteur())
        engine.run()
        assert done_at == [14.0]  # restarted the 10 s wait at t=4

    def test_interrupt_before_first_step_is_noop(self):
        engine = Engine(seed=0)
        ran = []

        def worker():
            ran.append(engine.now)
            yield engine.timeout(1.0)

        proc = engine.process(worker())
        proc.interrupt()  # still queued for its start event
        engine.run()
        assert ran == [0.0]

    def test_interrupt_finished_process_is_noop(self):
        engine = Engine(seed=0)

        def worker():
            yield engine.timeout(1.0)

        proc = engine.process(worker())
        engine.run()
        proc.interrupt()  # no error
        assert proc.triggered


class TestResourceCancel:
    def test_cancel_waiting_request_leaves_queue(self):
        engine = Engine(seed=0)
        cpu = Resource(engine, capacity=1)
        first = cpu.request()
        second = cpu.request()
        assert cpu.queue_length == 1
        cpu.cancel(second)
        assert cpu.queue_length == 0
        engine.run()
        assert first.triggered
        assert not second.triggered

    def test_cancel_granted_request_releases_slot(self):
        engine = Engine(seed=0)
        cpu = Resource(engine, capacity=1)
        grant = cpu.request()
        cpu.cancel(grant)
        assert cpu.in_use == 0
        regrant = cpu.request()  # slot is available again
        assert cpu.in_use == 1
        engine.run()
        assert regrant.triggered


class TestPipeFaults:
    def _finish_time(self, engine, event):
        done = []
        event._wait(lambda e: done.append(engine.now))
        engine.run()
        assert done, "transfer never completed"
        return done[0]

    def test_set_rate_midflight_rescales_completion(self):
        engine = Engine(seed=0)
        pipe = Pipe(engine, 100.0)
        done = pipe.transfer(100)

        def slow_down():
            yield engine.timeout(0.5)
            pipe.set_rate(50.0)

        engine.process(slow_down())
        # 50 bytes at 100 B/s, then 50 bytes at 50 B/s
        assert self._finish_time(engine, done) == pytest.approx(1.5)

    def test_block_stalls_and_unblock_resumes(self):
        engine = Engine(seed=0)
        pipe = Pipe(engine, 100.0)
        done = pipe.transfer(100)

        def flap():
            yield engine.timeout(0.2)
            pipe.block()
            assert pipe.blocked
            yield engine.timeout(0.5)
            pipe.unblock()

        engine.process(flap())
        assert self._finish_time(engine, done) == pytest.approx(1.5)

    def test_blocks_nest(self):
        engine = Engine(seed=0)
        pipe = Pipe(engine, 100.0)
        pipe.block()
        pipe.block()
        pipe.unblock()
        assert pipe.blocked  # the outer fault still holds the link down
        pipe.unblock()
        assert not pipe.blocked and pipe.rate == 100.0

    def test_unblock_of_unblocked_raises(self):
        engine = Engine(seed=0)
        pipe = Pipe(engine, 100.0)
        with pytest.raises(SimulationError):
            pipe.unblock()

    def test_stalled_pipe_is_not_busy(self):
        engine = Engine(seed=0)
        pipe = Pipe(engine, 100.0)
        pipe.transfer(50)

        def flap():
            yield engine.timeout(0.1)
            pipe.block()
            yield engine.timeout(10.0)
            pipe.unblock()

        engine.process(flap())
        engine.run()
        assert pipe.busy_seconds == pytest.approx(0.5)  # 50 bytes / 100 B/s

    def test_cancel_returns_bandwidth_to_survivors(self):
        engine = Engine(seed=0)
        pipe = Pipe(engine, 100.0)
        victim = pipe.transfer(100)
        survivor = pipe.transfer(100)

        def preempt():
            yield engine.timeout(1.0)  # both have drained 50 bytes
            assert pipe.cancel(victim)
            assert not pipe.cancel(victim)  # already gone

        engine.process(preempt())
        assert self._finish_time(engine, survivor) == pytest.approx(1.5)
        assert not victim.triggered


# -- degraded glusterfs reads ---------------------------------------------------------


def storage_nodes(n=4):
    return [Node(f"st{i}", NodeKind.STORAGE) for i in range(n)]


@pytest.fixture
def volume():
    return GlusterVolume(storage_nodes(), stripe_count=2, replica_count=2,
                         ledger=TransferLedger())


class TestDegradedReads:
    def test_dead_brick_leaves_read_rotation(self, volume):
        victim = volume.groups[0][0].name
        volume.fail_node(victim)
        assert volume.degraded
        for offset in range(0, 16 * volume.stripe_unit, volume.stripe_unit):
            assert volume.serving_node(offset).name != victim

    def test_read_plan_excludes_dead_brick(self, volume):
        volume.create_file("vmi-1", 8 << 20)
        victim = volume.groups[0][0].name
        volume.fail_node(victim)
        _moved, plan = volume.read_with_plan("vmi-1", 0, 8 << 20, reader="c0")
        assert victim not in {node.name for node, _ in plan}

    def test_lost_stripe_group_raises(self, volume):
        for node in volume.groups[0]:
            volume.fail_node(node.name)
        with pytest.raises(NetworkError, match="lost"):
            for offset in range(0, 4 * volume.stripe_unit, volume.stripe_unit):
                volume.serving_node(offset)

    def test_restore_rejoins_rotation(self, volume):
        victim = volume.groups[0][0].name
        volume.fail_node(victim)
        volume.restore_node(victim)
        assert not volume.degraded
        served = {
            volume.serving_node(offset).name
            for offset in range(0, 32 * volume.stripe_unit, volume.stripe_unit)
        }
        assert victim in served

    def test_unknown_node_rejected(self, volume):
        with pytest.raises(NetworkError):
            volume.fail_node("nope")
        with pytest.raises(NetworkError):
            volume.is_alive("nope")

    def test_primary_fails_over(self):
        cluster = IaaSCluster.build(n_compute=2, n_storage=4, block_size=BLOCK)
        first = cluster.storage.primary.name
        cluster.storage.gluster.fail_node(first)
        assert cluster.storage.primary.name != first


# -- crash / rejoin on the timed rig --------------------------------------------------


@pytest.fixture(scope="module")
def dataset():
    return AzureCommunityDataset(DatasetConfig(scale=1 / 2048))


def make_rig(dataset, n_compute=4, seed=0):
    cluster = IaaSCluster.build(n_compute=n_compute, n_storage=4, block_size=BLOCK)
    squirrel = Squirrel(
        cluster=cluster,
        estimator=make_estimator("gzip6", (BLOCK,), samples_per_point=2),
    )
    engine = Engine(seed=seed)
    timeline = Timeline(engine)
    return squirrel, engine, timeline, TimedSquirrel(squirrel, dataset, engine, timeline)


class TestInjectorValidation:
    def test_unknown_targets_rejected(self, dataset):
        _squirrel, _engine, _timeline, timed = make_rig(dataset)
        for text in ("crash:compute9@1+1", "crash:storage0@1+1",
                     "brick:compute0@1+1", "flap:nowhere@1+1"):
            with pytest.raises(ConfigError):
                FaultInjector(timed, FaultPlan.parse(text))

    def test_overlapping_crash_skipped(self, dataset):
        _squirrel, engine, timeline, timed = make_rig(dataset)
        plan = FaultPlan.fixed([
            FaultSpec(FaultKind.NODE_CRASH, "compute1", 1.0, 20.0),
            FaultSpec(FaultKind.NODE_CRASH, "compute1", 5.0, 20.0),
        ])
        FaultInjector(timed, plan).start()
        engine.run()
        assert timeline.counter("node_crashes") == 1
        assert timeline.counter("faults_skipped") == 1


class TestRejoinCatchUp:
    def test_registrations_during_downtime_replay_on_rejoin(self, dataset):
        squirrel, engine, timeline, timed = make_rig(dataset)
        squirrel.register(dataset.images[0])  # synced baseline for everyone
        FaultInjector(timed, FaultPlan.parse("crash:compute1@10+40")).start()

        def late_registrations():
            for offset, spec in enumerate(dataset.images[1:3]):
                yield engine.timeout(12.0 + offset)  # while compute1 is dark
                yield timed.register(spec)

        engine.process(late_registrations())
        engine.run()
        assert timeline.counter("node_rejoins") == 1
        assert timeline.counter("incremental_resyncs") == 1
        # catch-up replayed the missed snapshots: the rejoined node now
        # serves both late registrations straight from its local cache
        for spec in dataset.images[1:3]:
            outcome = squirrel.boot(spec.image_id, "compute1")
            assert outcome.cache_hit

    def test_boot_on_crashed_node_waits_for_rejoin(self, dataset):
        squirrel, engine, timeline, timed = make_rig(dataset)
        spec = dataset.images[0]
        squirrel.register(spec)
        FaultInjector(timed, FaultPlan.parse("crash:compute1@1+30")).start()

        def vm():
            yield engine.timeout(5.0)
            yield timed.boot(spec.image_id, "compute1")

        engine.process(vm())
        engine.run()
        assert timeline.counter("boots") == 1
        assert timeline.counter("boots_delayed") == 1
        stats = timeline.stats("boot_latency_s")
        assert stats.count == 1
        assert stats.p50 > 25.0  # queued behind the rejoin at t=31
        assert timeline.stats("node_recovery_s").p50 >= 30.0


# -- faulted storms -------------------------------------------------------------------


def faulted_storm_config(**overrides):
    base = dict(
        n_nodes=4, vms_per_node=2, scale=1 / 4096, seed=3,
        faults=FaultPlan.parse("crash:compute1@5+30,flap:compute2@8+10"),
    )
    base.update(overrides)
    return StormConfig(**base)


class TestFaultedStorm:
    def test_every_boot_completes_with_recovery_stats(self):
        report = boot_storm(faulted_storm_config())
        for side in (report.squirrel, report.baseline):
            assert side.boots == 8
            assert side.latency.count == 8  # nothing lost to the crash
        assert report.squirrel.node_recovery.count == 1
        assert report.squirrel.node_recovery.p50 >= 30.0

    def test_same_seed_is_bit_identical(self):
        a = boot_storm(faulted_storm_config()).to_dict()
        b = boot_storm(faulted_storm_config()).to_dict()
        assert a == b

    def test_seed_changes_the_timeline(self):
        a = boot_storm(faulted_storm_config()).to_dict()
        b = boot_storm(faulted_storm_config(seed=4)).to_dict()
        assert a != b

    def test_brick_failure_storm_completes(self):
        config = faulted_storm_config(
            faults=FaultPlan.parse("brick:storage0@2+20")
        )
        report = boot_storm(config)
        assert report.baseline.latency.count == 8
        assert report.baseline.summary["counters"].get("brick_failures") == 1


class TestJsonCli:
    def run_cli(self, capsys):
        from repro.__main__ import main

        argv = [
            "storm", "--nodes", "4", "--vms-per-node", "2", "--seed", "3",
            "--faults", "crash:compute1@5+30,flap:compute2@8+10", "--json",
        ]
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_json_output_is_deterministic(self, capsys):
        first = self.run_cli(capsys)
        second = self.run_cli(capsys)
        assert first == second
        payload = json.loads(first)
        side = payload["report"]["squirrel"]
        for key in ("boots", "latency", "recovery", "node_recovery",
                    "interrupted_boots", "delayed_boots"):
            assert key in side

    def test_bad_fault_plan_is_a_usage_error(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["storm", "--faults", "explode:compute1@1+1"])


class TestRegistry:
    def test_duplicate_id_rejected(self):
        from repro.experiments.registry import register

        with pytest.raises(ConfigError):
            register("fig02", "duplicate")(lambda ctx=None: None)

    def test_duplicate_alias_rejected(self):
        from repro.experiments.registry import register

        with pytest.raises(ConfigError):
            register("figXX", "dup alias", aliases=("fig15",))(
                lambda ctx=None: None
            )

    def test_alias_resolution_and_unknown(self):
        from repro.experiments.registry import get

        assert get("tab03").exp_id == "fig14"
        with pytest.raises(ConfigError):
            get("fig99")
