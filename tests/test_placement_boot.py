"""Integration tests: Squirrel boots under a placement coordinator.

These pin the accounting contracts the placement subsystem promises: peer
redirects ride their own ledger purpose (never inflating boot-read ingress
or the glusterfs served-bytes tallies), adoption respects its per-node
budget, all-holders-down falls back to the origin, and a rejoining node is
re-seeded with exactly its assigned caches.
"""

import pytest

from repro.core import IaaSCluster, Squirrel
from repro.placement import (
    PEER_REDIRECT_PURPOSE,
    SEED_PURPOSE,
    PlacementContext,
    PlacementSpec,
    build_coordinator,
    zipf_weights,
)
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator

SCALE = 1 / 1024
BLOCK = 65536
N_COMPUTE = 6
N_IMAGES = 4


@pytest.fixture(scope="module")
def dataset():
    return AzureCommunityDataset(DatasetConfig(scale=SCALE))


def make_rig(dataset, spec=None):
    cluster = IaaSCluster.build(
        n_compute=N_COMPUTE, n_storage=4, block_size=BLOCK
    )
    estimator = make_estimator("gzip6", (BLOCK,), samples_per_point=2)
    squirrel = Squirrel(cluster=cluster, estimator=estimator)
    spec = spec or PlacementSpec(policy="top_k", top_k=1, replica_floor=2)
    context = PlacementContext(
        nodes=tuple(node.name for node in cluster.compute),
        popularity=tuple(float(w) for w in zipf_weights(N_IMAGES, 1.0)),
    )
    squirrel.placement = build_coordinator(spec, cluster, context)
    return squirrel


class TestSeeding:
    def test_register_installs_on_holders_only(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]  # image 1 is tail: 2 scattered replicas
        squirrel.register(spec)
        coord = squirrel.placement
        holders = set(coord.directory.holders(spec.image_id))
        assert len(holders) == 2
        cache = squirrel.cache_file_of(spec.image_id)
        for node in squirrel.cluster.compute:
            assert node.ccvolume.has_file(cache) == (node.name in holders)

    def test_seed_traffic_has_its_own_purpose(self, dataset):
        squirrel = make_rig(dataset)
        squirrel.register(dataset.images[0])
        ledger = squirrel.cluster.ledger
        assert ledger.total_bytes(purpose=SEED_PURPOSE) > 0
        assert (
            squirrel.cluster.compute_ingress_bytes(purpose="boot-read") == 0
        )

    def test_hot_image_is_fleet_wide(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[0]  # top_k=1: image 0 is the hot set
        squirrel.register(spec)
        assert len(squirrel.placement.directory.holders(spec.image_id)) == (
            N_COMPUTE
        )

    def test_deregister_removes_from_holders(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]
        squirrel.register(spec)
        cache = squirrel.cache_file_of(spec.image_id)
        squirrel.deregister(spec.image_id)
        assert squirrel.placement.directory.holders(spec.image_id) == ()
        for node in squirrel.cluster.compute:
            assert not node.ccvolume.has_file(cache)


class TestPeerRedirect:
    def test_miss_on_non_holder_redirects_to_peer(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]
        squirrel.register(spec)
        coord = squirrel.placement
        holders = set(coord.directory.holders(spec.image_id))
        reader = next(
            node.name
            for node in squirrel.cluster.compute
            if node.name not in holders
        )
        before = squirrel.cluster.compute_ingress_bytes(purpose="boot-read")
        outcome = squirrel.boot(spec.image_id, reader)
        assert outcome.source == "peer"
        assert outcome.peer in holders
        assert not outcome.cache_hit
        assert outcome.network_bytes == spec.cache_bytes
        assert coord.peer_redirects == 1
        assert coord.redirect_bytes == spec.cache_bytes
        # the redirect is not boot-read traffic and never touches a brick
        assert (
            squirrel.cluster.compute_ingress_bytes(purpose="boot-read")
            == before
        )
        gluster = squirrel.cluster.storage.gluster
        assert all(
            t.purpose == PEER_REDIRECT_PURPOSE
            for t in squirrel.cluster.ledger.transfers
            if t.dst == reader
        )
        gluster.verify_served_accounting()

    def test_boot_on_holder_is_local_hit(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]
        squirrel.register(spec)
        holder = squirrel.placement.directory.holders(spec.image_id)[0]
        outcome = squirrel.boot(spec.image_id, holder)
        assert outcome.cache_hit and outcome.source == "cache"
        assert outcome.network_bytes == 0

    def test_all_holders_down_falls_back_to_origin(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]
        squirrel.register(spec)
        coord = squirrel.placement
        holders = set(coord.directory.holders(spec.image_id))
        for name in holders:
            squirrel.cluster.node(name).online = False
        reader = next(
            node.name
            for node in squirrel.cluster.compute
            if node.name not in holders
        )
        outcome = squirrel.boot(spec.image_id, reader)
        assert outcome.source == "origin"
        assert coord.origin_fallbacks == 1
        assert coord.peer_redirects == 0
        assert outcome.network_bytes > 0
        squirrel.cluster.storage.gluster.verify_served_accounting()

    def test_dead_holder_fails_over_to_survivor(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]
        squirrel.register(spec)
        coord = squirrel.placement
        holders = coord.directory.holders(spec.image_id)
        squirrel.cluster.node(holders[0]).online = False
        reader = next(
            node.name
            for node in squirrel.cluster.compute
            if node.name not in holders
        )
        outcome = squirrel.boot(spec.image_id, reader)
        assert outcome.source == "peer"
        assert outcome.peer != holders[0]
        assert outcome.peer in holders


class TestAdoption:
    def test_budget_zero_never_adopts(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]
        squirrel.register(spec)
        holders = set(squirrel.placement.directory.holders(spec.image_id))
        reader = next(
            node.name
            for node in squirrel.cluster.compute
            if node.name not in holders
        )
        outcome = squirrel.boot(spec.image_id, reader)
        assert not outcome.adopted
        assert squirrel.placement.adoptions == 0

    def test_adoption_within_budget_makes_future_boots_local(self, dataset):
        placement_spec = PlacementSpec(
            policy="top_k", top_k=0, replica_floor=2,
            adopt_budget_bytes=1 << 30,
        )
        squirrel = make_rig(dataset, placement_spec)
        spec = dataset.images[1]
        squirrel.register(spec)
        coord = squirrel.placement
        holders = set(coord.directory.holders(spec.image_id))
        reader = next(
            node.name
            for node in squirrel.cluster.compute
            if node.name not in holders
        )
        first = squirrel.boot(spec.image_id, reader)
        assert first.adopted
        assert coord.adoptions == 1
        assert coord.adopted_bytes == spec.cache_bytes
        assert coord.directory.holds(reader, spec.image_id)
        second = squirrel.boot(spec.image_id, reader)
        assert second.cache_hit and second.source == "cache"

    def test_budget_exhaustion_stops_adoption(self, dataset):
        spec0, spec1 = dataset.images[1], dataset.images[2]
        budget = spec0.cache_bytes + spec1.cache_bytes // 2
        placement_spec = PlacementSpec(
            policy="top_k", top_k=0, replica_floor=2,
            adopt_budget_bytes=budget,
        )
        squirrel = make_rig(dataset, placement_spec)
        squirrel.register(spec0)
        squirrel.register(spec1)
        coord = squirrel.placement
        reader = next(
            node.name
            for node in squirrel.cluster.compute
            if not coord.directory.holds(node.name, spec0.image_id)
            and not coord.directory.holds(node.name, spec1.image_id)
        )
        assert squirrel.boot(spec0.image_id, reader).adopted
        assert not squirrel.boot(spec1.image_id, reader).adopted
        assert coord.adoptions == 1


class TestReseed:
    def test_rejoining_holder_pulls_assigned_caches(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[0]  # hot: every node is a holder
        offline = squirrel.cluster.compute[3]
        offline.online = False
        squirrel.register(spec)
        cache = squirrel.cache_file_of(spec.image_id)
        assert not offline.ccvolume.has_file(cache)
        offline.online = True
        moved = squirrel.resync_node(offline.name)
        assert moved == spec.cache_bytes
        assert offline.ccvolume.has_file(cache)
        ledger = squirrel.cluster.ledger
        assert (
            ledger.bytes_into(offline.name, purpose=SEED_PURPOSE)
            == spec.cache_bytes
        )
        assert squirrel.placement.reseed_bytes == spec.cache_bytes

    def test_reseed_skips_non_holders(self, dataset):
        squirrel = make_rig(dataset)
        spec = dataset.images[1]  # tail: 2 replicas
        squirrel.register(spec)
        holders = set(squirrel.placement.directory.holders(spec.image_id))
        outsider = next(
            node
            for node in squirrel.cluster.compute
            if node.name not in holders
        )
        assert squirrel.resync_node(outsider.name) == 0
        assert not outsider.ccvolume.has_file(
            squirrel.cache_file_of(spec.image_id)
        )
