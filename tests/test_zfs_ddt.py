"""Unit tests for the dedup table."""

import pytest

from repro.common.errors import StorageError
from repro.zfs.ddt import (
    DDT_ENTRY_CORE_BYTES,
    DDT_ENTRY_DISK_BYTES,
    DedupTable,
)


@pytest.fixture
def ddt():
    return DedupTable()


class TestInsertLookup:
    def test_insert_creates_refcount_one(self, ddt):
        entry = ddt.insert("v:01", psize=100, lsize=4096, dva=0, txg=1)
        assert entry.refcount == 1
        assert ddt.lookup("v:01") is entry

    def test_lookup_missing_returns_none(self, ddt):
        assert ddt.lookup("v:99") is None

    def test_double_insert_rejected(self, ddt):
        ddt.insert("v:01", psize=100, lsize=4096, dva=0, txg=1)
        with pytest.raises(StorageError, match="already exists"):
            ddt.insert("v:01", psize=100, lsize=4096, dva=0, txg=1)


class TestRefcounting:
    def test_add_ref_increments(self, ddt):
        ddt.insert("v:01", psize=100, lsize=4096, dva=0, txg=1)
        entry = ddt.add_ref("v:01")
        assert entry.refcount == 2

    def test_add_ref_missing_raises(self, ddt):
        with pytest.raises(StorageError):
            ddt.add_ref("v:99")

    def test_remove_ref_returns_none_while_shared(self, ddt):
        ddt.insert("v:01", psize=100, lsize=4096, dva=0, txg=1)
        ddt.add_ref("v:01")
        assert ddt.remove_ref("v:01") is None
        assert ddt.entry_count == 1

    def test_remove_last_ref_returns_dead_entry(self, ddt):
        ddt.insert("v:01", psize=100, lsize=4096, dva=7, txg=1)
        dead = ddt.remove_ref("v:01")
        assert dead is not None and dead.dva == 7
        assert ddt.entry_count == 0

    def test_remove_ref_missing_raises(self, ddt):
        with pytest.raises(StorageError):
            ddt.remove_ref("v:99")


class TestAccounting:
    def test_disk_bytes_proportional_to_entries(self, ddt):
        for i in range(10):
            ddt.insert(f"v:{i:02d}", psize=100, lsize=4096, dva=i, txg=1)
        assert ddt.on_disk_bytes == 10 * DDT_ENTRY_DISK_BYTES

    def test_core_bytes_include_fixed_overhead(self, ddt):
        assert ddt.in_core_bytes == 0  # empty table charges nothing
        ddt.insert("v:01", psize=100, lsize=4096, dva=0, txg=1)
        assert ddt.in_core_bytes > DDT_ENTRY_CORE_BYTES

    def test_dedup_ratio_empty_is_one(self, ddt):
        assert ddt.dedup_ratio() == 1.0

    def test_dedup_ratio_counts_references(self, ddt):
        ddt.insert("v:01", psize=1000, lsize=4096, dva=0, txg=1)
        ddt.add_ref("v:01")
        ddt.add_ref("v:01")
        assert ddt.dedup_ratio() == pytest.approx(3.0)

    def test_referenced_vs_allocated(self, ddt):
        ddt.insert("v:01", psize=1000, lsize=4096, dva=0, txg=1)
        ddt.add_ref("v:01")
        ddt.insert("v:02", psize=500, lsize=4096, dva=1, txg=1)
        assert ddt.allocated_psize == 1500
        assert ddt.referenced_psize == 2500
        assert ddt.total_references == 3

    def test_iteration_and_len(self, ddt):
        ddt.insert("v:01", psize=1, lsize=1, dva=0, txg=1)
        ddt.insert("v:02", psize=1, lsize=1, dva=1, txg=1)
        assert len(ddt) == 2
        assert {e.checksum for e in ddt} == {"v:01", "v:02"}
