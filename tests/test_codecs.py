"""Unit and property tests for the compression codecs."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import (
    available_codecs,
    get_codec,
    is_zero_block,
    lz4_compress,
    lz4_decompress,
    lzjb_compress,
    lzjb_decompress,
)
from repro.common.errors import CodecError


def _sample_inputs():
    rng = np.random.default_rng(7)
    words = [b"alloc", b"kernel", b"module", b"device", b"mount", b"cache",
             b"block", b"inode", b"daemon", b"socket", b"error", b"retry"]
    text = b" ".join(
        words[i] for i in rng.integers(0, len(words), size=2000)
    )[:8192]
    binary = bytes(rng.integers(0, 48, size=8192, dtype=np.uint8))
    random_block = bytes(rng.integers(0, 256, size=8192, dtype=np.uint8))
    return {
        "empty": b"",
        "single": b"x",
        "zeros": bytes(4096),
        "text": text,
        "binary": binary,
        "random": random_block,
        "repeat": b"ab" * 4096,
        "short": b"hello world",
    }


SAMPLES = _sample_inputs()
ALL_CODECS = ["gzip1", "gzip6", "gzip9", "lzjb", "lz4", "off"]


class TestRegistry:
    def test_paper_codecs_available(self):
        for name in ("gzip6", "gzip9", "lzjb", "lz4"):
            assert name in available_codecs()

    def test_unknown_codec_raises(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("zstd")

    def test_instances_are_shared(self):
        assert get_codec("gzip6") is get_codec("gzip6")


class TestRoundTrip:
    @pytest.mark.parametrize("codec_name", ALL_CODECS)
    @pytest.mark.parametrize("sample_name", sorted(SAMPLES))
    def test_round_trip(self, codec_name, sample_name):
        codec = get_codec(codec_name)
        data = SAMPLES[sample_name]
        payload = codec.compress(data)
        assert codec.decompress(payload, len(data)) == data

    @pytest.mark.parametrize("codec_name", ["gzip6", "lzjb", "lz4"])
    @given(data=st.binary(min_size=0, max_size=5000))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, codec_name, data):
        codec = get_codec(codec_name)
        assert codec.decompress(codec.compress(data), len(data)) == data


class TestCompressionQuality:
    def test_zeros_compress_very_well(self):
        # lzjb's 66-byte max match bounds it near 2 bytes per 66 (~3%);
        # gzip and lz4 do far better
        for name, bound in (("gzip6", 1024), ("lzjb", 4096), ("lz4", 1024)):
            codec = get_codec(name)
            assert codec.compressed_size(bytes(65536)) < bound

    def test_random_does_not_compress(self):
        data = SAMPLES["random"]
        for name in ("gzip6", "lzjb", "lz4"):
            codec = get_codec(name)
            # effective size falls back to raw when compression loses
            assert codec.effective_size(data) == len(data)

    def test_paper_codec_ordering_on_text(self):
        """Figure 3: gzip9 <= gzip6 < lz4-family < lzjb in compressed size."""
        data = SAMPLES["text"]
        sizes = {name: get_codec(name).compressed_size(data) for name in ALL_CODECS[:5]}
        assert sizes["gzip9"] <= sizes["gzip6"]
        assert sizes["gzip6"] < sizes["lz4"]
        assert sizes["gzip6"] < sizes["lzjb"]

    def test_larger_blocks_compress_better(self):
        """Section 2.2: gzip ratio improves with block size."""
        codec = get_codec("gzip6")
        base = SAMPLES["text"] + SAMPLES["binary"]

        def ratio(block_size):
            blocks = [base[i : i + block_size] for i in range(0, len(base), block_size)]
            raw = sum(len(b) for b in blocks)
            compressed = sum(codec.compressed_size(b) for b in blocks)
            return raw / compressed

        assert ratio(1024) < ratio(16384)


class TestLzjbStream:
    def test_matches_are_emitted(self):
        # long repeats must shrink a lot
        data = b"squirrel" * 512
        assert len(lzjb_compress(data)) < len(data) // 4

    def test_truncated_stream_raises(self):
        payload = lzjb_compress(b"squirrel" * 64)
        with pytest.raises(CodecError):
            lzjb_decompress(payload[: len(payload) // 2], 8 * 64)

    def test_incompressible_overhead_bounded(self):
        # worst case: 1 copymap byte per 8 literals => <= 12.5% + epsilon
        data = SAMPLES["random"]
        assert len(lzjb_compress(data)) <= len(data) * 9 // 8 + 2


class TestLz4Stream:
    def test_matches_are_emitted(self):
        data = b"squirrel" * 512
        assert len(lz4_compress(data)) < len(data) // 4

    def test_zero_offset_rejected(self):
        # token: 0 literals + match, offset 0x0000 is invalid per spec
        bad = bytes([0x00, 0x00, 0x00, 0x00])
        with pytest.raises(CodecError):
            lz4_decompress(bad, 16)

    def test_truncated_stream_raises(self):
        payload = lz4_compress(b"squirrel" * 64)
        with pytest.raises(CodecError):
            lz4_decompress(payload[:3], 8 * 64)

    def test_overlapping_match_semantics(self):
        # RLE via offset-1 overlap: classic LZ4 behaviour the decoder must honour
        data = b"a" * 1000
        assert lz4_decompress(lz4_compress(data), 1000) == data

    def test_wrong_original_size_raises(self):
        payload = lz4_compress(b"hello world, hello world")
        with pytest.raises(CodecError):
            lz4_decompress(payload, 5)


class TestGzip:
    def test_payload_is_zlib_stream(self):
        payload = get_codec("gzip6").compress(b"hello")
        assert zlib.decompress(payload) == b"hello"

    def test_wrong_original_size_raises(self):
        payload = get_codec("gzip6").compress(b"hello")
        with pytest.raises(CodecError):
            get_codec("gzip6").decompress(payload, 3)

    def test_invalid_level_rejected(self):
        from repro.codecs import GzipCodec

        with pytest.raises(CodecError):
            GzipCodec(0)


class TestZeroDetection:
    def test_empty_is_zero(self):
        assert is_zero_block(b"")

    def test_all_zero(self):
        assert is_zero_block(bytes(128 * 1024))

    def test_single_nonzero_byte_detected(self):
        data = bytearray(128 * 1024)
        data[100_000] = 1
        assert not is_zero_block(bytes(data))

    def test_nonzero_in_final_partial_chunk(self):
        data = bytearray(5000)
        data[-1] = 7
        assert not is_zero_block(bytes(data))


class TestEffectiveSize:
    def test_compressible_uses_compressed(self):
        codec = get_codec("gzip6")
        data = b"a" * 65536
        assert codec.effective_size(data) == codec.compressed_size(data)

    def test_marginal_savings_rejected(self):
        """ZFS's 12.5% rule: tiny savings store raw."""
        codec = get_codec("gzip6")
        data = SAMPLES["random"]
        assert codec.effective_size(data) == len(data)

    def test_off_codec_never_shrinks(self):
        codec = get_codec("off")
        assert codec.effective_size(b"a" * 4096) == 4096
