"""Snapshot/deadlist semantics, verified against a reachability oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SnapshotError
from repro.zfs import ZPool


def make_pool():
    return ZPool(capacity=256 << 20, arc_capacity=1 << 20)


def block(tag: int, size: int = 4096) -> bytes:
    """Deterministic distinct, compressible block content per tag."""
    seed = tag.to_bytes(4, "little") * 16
    return (seed * (size // len(seed) + 1))[:size]


class TestSnapshotBasics:
    def test_snapshot_captures_files(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        snap = ds.snapshot("s1")
        assert "f" in snap.files
        assert len(snap.files["f"]) == 1

    def test_duplicate_snapshot_name_rejected(self):
        pool = make_pool()
        ds = pool.create_dataset("d")
        ds.snapshot("s1")
        with pytest.raises(SnapshotError):
            ds.snapshot("s1")

    def test_snapshot_isolated_from_later_writes(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        snap = ds.snapshot("s1")
        ds.write_block("f", 0, block(2))
        assert snap.files["f"][0].checksum != ds.file("f").get_block(0).checksum

    def test_snapshots_ordered(self):
        pool = make_pool()
        ds = pool.create_dataset("d")
        ds.snapshot("a")
        ds.snapshot("b")
        names = [s.name for s in ds.snapshots()]
        assert names == ["a", "b"]
        assert ds.latest_snapshot().name == "b"


class TestDeadlistSemantics:
    def test_overwrite_after_snapshot_defers_free(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        used_one_block = pool.data_bytes
        ds.snapshot("s1")
        ds.write_block("f", 0, block(2))
        # both versions alive: snapshot pins the old block
        assert pool.data_bytes == 2 * used_one_block

    def test_destroying_snapshot_frees_pinned_block(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        used_one_block = pool.data_bytes
        ds.snapshot("s1")
        ds.write_block("f", 0, block(2))
        ds.destroy_snapshot("s1")
        assert pool.data_bytes == used_one_block

    def test_overwrite_without_snapshot_frees_now(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        used_one_block = pool.data_bytes
        ds.write_block("f", 0, block(2))
        assert pool.data_bytes == used_one_block

    def test_block_shared_by_two_snapshots_survives_one_destroy(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        ds.snapshot("s1")
        ds.snapshot("s2")
        ds.write_block("f", 0, block(2))
        one = _single_block_psize(pool, block(1))
        ds.destroy_snapshot("s2")  # s1 still pins block(1)
        assert pool.data_bytes == 2 * one  # block(1) pinned by s1, block(2) live
        # the old block must still be readable through s1's pointer
        bp = ds.get_snapshot("s1").files["f"][0]
        assert pool.zio.read_bytes(bp) == block(1)

    def test_destroy_middle_snapshot(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        ds.write_block("f", 0, block(1))
        ds.snapshot("s1")
        ds.write_block("f", 0, block(2))
        ds.snapshot("s2")
        ds.write_block("f", 0, block(3))
        ds.snapshot("s3")
        one = _single_block_psize(pool, block(1))
        ds.destroy_snapshot("s2")  # only s2 referenced block(2)
        assert pool.zio.read_bytes(ds.get_snapshot("s1").files["f"][0]) == block(1)
        assert pool.zio.read_bytes(ds.get_snapshot("s3").files["f"][0]) == block(3)
        # block(2) freed; block(1) pinned by s1; block(3) shared by s3 + head
        assert pool.data_bytes == 2 * one

    def test_dataset_destroy_reclaims_everything(self):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        for i in range(5):
            ds.write_block("f", i, block(i + 1))
            ds.snapshot(f"s{i}")
            ds.write_block("f", i, block(100 + i))
        pool.destroy_dataset("d")
        assert pool.data_bytes == 0
        assert pool.ddt.entry_count == 0


def _single_block_psize(pool, data: bytes) -> int:
    """Sector-aligned allocation for one copy of ``data`` in a scratch pool."""
    scratch = ZPool(capacity=16 << 20)
    ds = scratch.create_dataset("x", record_size=4096)
    ds.write_block("f", 0, data)
    return scratch.data_bytes


def _oracle_referenced(pool, ds) -> dict[str, int]:
    """Brute-force refcounts: live head + every snapshot, per checksum."""
    counts: dict[str, int] = {}
    views = [list(ds.iter_live_blocks())]
    for snap in ds.snapshots():
        views.append([bp for blocks in snap.files.values() for bp in blocks])
    for view in views:
        for bp in view:
            if not bp.is_hole:
                counts[bp.checksum] = counts.get(bp.checksum, 0) + 1
    return counts


class TestReachabilityOracle:
    """Randomised sequences of writes/snapshots/destroys never leak or
    double-free: pool state must match a from-scratch reachability count."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["write", "snap", "destroy_snap", "delete"]),
                st.integers(0, 5),  # block index / snapshot selector
                st.integers(0, 7),  # content tag
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_no_leaks_no_premature_frees(self, ops):
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        snap_serial = 0
        for op, sel, tag in ops:
            if op == "write":
                ds.write_block("f", sel, block(tag + 1))
            elif op == "snap":
                snap_serial += 1
                ds.snapshot(f"s{snap_serial}")
            elif op == "destroy_snap":
                snaps = ds.snapshots()
                if snaps:
                    ds.destroy_snapshot(snaps[sel % len(snaps)].name)
            elif op == "delete":
                if ds.has_file("f"):
                    ds.delete_file("f")
        oracle = _oracle_referenced(pool, ds)
        # 1. every reachable checksum is present in the DDT
        for checksum in oracle:
            assert pool.ddt.lookup(checksum) is not None, "premature free!"
        # 2. every DDT entry is reachable OR pinned by a deadlist (dead but
        #    deferred) — after destroying all snapshots nothing may remain
        for snap in [s.name for s in ds.snapshots()]:
            ds.destroy_snapshot(snap)
        oracle_final = _oracle_referenced(pool, ds)
        ddt_checksums = {entry.checksum for entry in pool.ddt}
        assert ddt_checksums == set(oracle_final), "leak after snapshot teardown"
        # 3. refcounts match exactly
        for checksum, expected in oracle_final.items():
            assert pool.ddt.lookup(checksum).refcount == expected

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_space_returns_to_zero(self, data):
        rng_ops = data.draw(
            st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5)), max_size=25)
        )
        pool = make_pool()
        ds = pool.create_dataset("d", record_size=4096)
        serial = 0
        for kind, sel in rng_ops:
            if kind == 0:
                ds.write_block("f", sel, block(sel + 1))
            elif kind == 1:
                serial += 1
                ds.snapshot(f"s{serial}")
            elif kind == 2 and ds.snapshots():
                ds.destroy_snapshot(ds.snapshots()[sel % len(ds.snapshots())].name)
            elif kind == 3 and ds.has_file("f"):
                ds.delete_file("f")
        pool.destroy_dataset("d")
        assert pool.data_bytes == 0
        assert pool.ddt.entry_count == 0
        assert pool.space.allocation_count == 0
