"""End-to-end integration tests across all subsystems.

These walk the full Squirrel story on a miniature deployment: dataset
synthesis → registration (scVolume writes, snapshots, multicast, ccVolume
receive) → boots → deregistration and GC → offline catch-up, asserting
cross-layer consistency (every byte accounted, replicas bit-identical).
"""

import numpy as np
import pytest

from repro.core import IaaSCluster, Squirrel, run_boot_storm
from repro.vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    block_view,
    cache_stream,
    make_estimator,
)

BLOCK = 65536


@pytest.fixture(scope="module")
def world():
    dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 2048))
    cluster = IaaSCluster.build(n_compute=5, n_storage=4, block_size=BLOCK)
    squirrel = Squirrel(
        cluster=cluster, estimator=make_estimator("gzip6", (BLOCK,), samples_per_point=2)
    )
    for spec in dataset.images[:30]:
        squirrel.register(spec)
    return dataset, cluster, squirrel


class TestReplicaConsistency:
    def test_every_ccvolume_mirrors_the_scvolume(self, world):
        _, cluster, squirrel = world
        scvol = cluster.storage.scvolume
        for node in cluster.compute:
            assert node.ccvolume.file_names() == scvol.file_names()

    def test_replicated_block_pointers_carry_identical_checksums(self, world):
        """A cache file's dedup identities must be byte-for-byte equal on the
        storage node and every compute node (full replication)."""
        _, cluster, squirrel = world
        scvol = cluster.storage.scvolume
        for image_id in squirrel.registered_ids()[:5]:
            name = squirrel.cache_file_of(image_id)
            reference = [bp.checksum for bp in scvol.file(name).blocks]
            for node in cluster.compute:
                replica = [bp.checksum for bp in node.ccvolume.file(name).blocks]
                assert replica == reference

    def test_ccvolume_matches_generated_cache_content(self, world):
        """What landed on a node is exactly the image's boot working set."""
        dataset, cluster, squirrel = world
        spec = dataset.images[3]
        view = block_view(cache_stream(spec), BLOCK)
        node = cluster.compute[2]
        stored = node.ccvolume.file(squirrel.cache_file_of(spec.image_id))
        expected = [
            None if hole else f"v:{sig:016x}"
            for sig, hole in zip(view.signatures.tolist(), view.is_hole.tolist())
        ]
        assert [bp.checksum for bp in stored.blocks] == expected

    def test_all_node_pools_have_equal_footprints(self, world):
        _, cluster, _ = world
        footprints = {node.pool.disk_used_bytes for node in cluster.compute}
        assert len(footprints) == 1


class TestStorageEfficiencyEndToEnd:
    def test_dedup_pays_off_across_caches(self, world):
        dataset, cluster, squirrel = world
        node = cluster.compute[0]
        raw = sum(dataset.images[i].cache_bytes for i in squirrel.registered_ids())
        assert node.pool.disk_used_bytes < raw / 2  # CCR >> 2 at 64 KB

    def test_scvolume_and_ccvolume_dedup_ratio_similar(self, world):
        _, cluster, _ = world
        sc_ratio = cluster.storage.pool.dedup_ratio()
        cc_ratio = cluster.compute[0].pool.dedup_ratio()
        # ccVolumes receive the same content (plus snapshot bookkeeping)
        assert cc_ratio == pytest.approx(sc_ratio, rel=0.15)


class TestLifecycle:
    def test_full_lifecycle_accounting(self):
        """Register → boot → deregister → GC drives the scVolume's *data*
        back down; snapshot metadata is bounded by the GC window."""
        dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 2048))
        cluster = IaaSCluster.build(n_compute=2, n_storage=4, block_size=BLOCK)
        squirrel = Squirrel(
            cluster=cluster,
            estimator=make_estimator("gzip6", (BLOCK,), samples_per_point=2),
            gc_window_days=3,
        )
        for spec in dataset.images[:10]:
            squirrel.register(spec)
            squirrel.advance_time(1)
        peak = cluster.storage.pool.data_bytes
        for image_id in squirrel.registered_ids():
            squirrel.deregister(image_id)
        squirrel.register(dataset.images[10])  # carries the unlinks
        squirrel.advance_time(10)
        squirrel.register(dataset.images[11])
        squirrel.advance_time(1)
        squirrel.collect_garbage()
        assert cluster.storage.pool.data_bytes < peak / 2

    def test_boot_storm_after_churn(self):
        dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 2048))
        cluster = IaaSCluster.build(n_compute=4, n_storage=4, block_size=BLOCK)
        squirrel = Squirrel(
            cluster=cluster,
            estimator=make_estimator("gzip6", (BLOCK,), samples_per_point=2),
        )
        for spec in dataset.images[:20]:
            squirrel.register(spec)
        for image_id in (0, 5, 7):
            squirrel.deregister(image_id)
        storm = run_boot_storm(
            squirrel, dataset, n_nodes=4, vms_per_node=2, with_caches=True
        )
        assert storm.compute_ingress_bytes == 0
        assert storm.cache_hits == storm.boots

    def test_node_down_through_churn_catches_up(self):
        dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 2048))
        cluster = IaaSCluster.build(n_compute=3, n_storage=4, block_size=BLOCK)
        squirrel = Squirrel(
            cluster=cluster,
            estimator=make_estimator("gzip6", (BLOCK,), samples_per_point=2),
        )
        squirrel.register(dataset.images[0])
        cluster.node("compute1").online = False
        squirrel.register(dataset.images[1])
        squirrel.deregister(0)
        squirrel.register(dataset.images[2])
        squirrel.resync_node("compute1")
        node = cluster.node("compute1")
        assert not node.ccvolume.has_file(squirrel.cache_file_of(0))
        assert node.ccvolume.has_file(squirrel.cache_file_of(1))
        assert node.ccvolume.has_file(squirrel.cache_file_of(2))
        # and its pool now matches the others byte for byte
        assert (
            node.pool.disk_used_bytes
            == cluster.node("compute0").pool.disk_used_bytes
        )


class TestBytesModeDeployment:
    """A miniature deployment over the *materialised* content path: real
    bytes, real codecs, end-to-end through register/receive/read."""

    def test_real_bytes_round_trip_through_replication(self):
        from repro.vmi import materialize_block
        from repro.zfs import ZPool, generate_send, receive

        dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 8192))
        spec = dataset.images[0]
        stream = cache_stream(spec)
        view = block_view(stream, 4096)

        source_pool = ZPool(capacity=1 << 30)
        scvol = source_pool.create_dataset("scvol", record_size=4096)
        payload = materialize_block(stream[:64])  # first 64 grains = 16 blocks
        scvol.write_file("cache-0", payload)
        scvol.snapshot("v1")

        target_pool = ZPool(capacity=1 << 30)
        ccvol = target_pool.create_dataset("ccvol", record_size=4096)
        receive(ccvol, generate_send(scvol, "v1"))
        assert ccvol.read_file("cache-0") == payload
        # dedup found the duplicate grains across the wire too
        assert target_pool.ddt.entry_count == source_pool.ddt.entry_count
        assert view.block_size == 4096  # (sanity: view built consistently)
