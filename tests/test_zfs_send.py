"""Send/receive stream tests: full, incremental, preconditions, fidelity."""

import pytest

from repro.common.errors import SendStreamError
from repro.zfs import ZPool, generate_send, receive
from repro.zfs.send import RecordKind


def make_pool():
    return ZPool(capacity=256 << 20, arc_capacity=1 << 20)


def block(tag: int, size: int = 4096) -> bytes:
    seed = tag.to_bytes(4, "little") * 16
    return (seed * (size // len(seed) + 1))[:size]


@pytest.fixture
def sender():
    pool = make_pool()
    ds = pool.create_dataset("scvol", record_size=4096)
    ds.write_file("cache-a", block(1) + block(2))
    ds.snapshot("v1")
    return pool, ds


class TestFullSend:
    def test_full_round_trip(self, sender):
        _, src = sender
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        stream = generate_send(src, "v1")
        receive(dst, stream)
        assert dst.read_file("cache-a") == block(1) + block(2)
        assert dst.has_snapshot("v1")

    def test_full_into_nonempty_rejected(self, sender):
        _, src = sender
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        dst.write_block("junk", 0, block(9))
        with pytest.raises(SendStreamError, match="non-empty"):
            receive(dst, generate_send(src, "v1"))

    def test_stream_size_reflects_psize_not_lsize(self, sender):
        _, src = sender
        stream = generate_send(src, "v1")
        assert 0 < stream.size_bytes < stream.logical_bytes


class TestIncrementalSend:
    def test_incremental_carries_only_new_blocks(self, sender):
        _, src = sender
        src.write_file("cache-b", block(3))
        src.snapshot("v2")
        stream = generate_send(src, "v2", from_snapshot="v1")
        writes = [r for r in stream.records if r.kind is RecordKind.WRITE]
        assert {r.file_name for r in writes} == {"cache-b"}

    def test_incremental_round_trip(self, sender):
        _, src = sender
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        src.write_file("cache-b", block(3))
        src.snapshot("v2")
        receive(dst, generate_send(src, "v2", from_snapshot="v1"))
        assert dst.read_file("cache-b") == block(3)
        assert dst.read_file("cache-a") == block(1) + block(2)
        assert dst.latest_snapshot().name == "v2"

    def test_incremental_needs_matching_source(self, sender):
        _, src = sender
        src.write_file("cache-b", block(3))
        src.snapshot("v2")
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        with pytest.raises(SendStreamError, match="needs snapshot"):
            receive(dst, generate_send(src, "v2", from_snapshot="v1"))

    def test_wrong_direction_rejected(self, sender):
        _, src = sender
        src.snapshot("v2")
        with pytest.raises(SendStreamError, match="not older"):
            generate_send(src, "v1", from_snapshot="v2")

    def test_unlink_propagates(self, sender):
        _, src = sender
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        src.delete_file("cache-a")
        src.write_file("cache-b", block(3))
        src.snapshot("v2")
        receive(dst, generate_send(src, "v2", from_snapshot="v1"))
        assert not dst.has_file("cache-a")

    def test_overwrite_propagates(self, sender):
        _, src = sender
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        src.write_block("cache-a", 0, block(7))
        src.snapshot("v2")
        receive(dst, generate_send(src, "v2", from_snapshot="v1"))
        assert dst.read_file("cache-a") == block(7) + block(2)

    def test_duplicate_target_snapshot_rejected(self, sender):
        _, src = sender
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        with pytest.raises(SendStreamError, match="already exists"):
            receive(dst, generate_send(src, "v1"))


class TestVirtualStreams:
    def test_virtual_blocks_travel_by_signature(self):
        pool = make_pool()
        src = pool.create_dataset("scvol", record_size=4096)
        src.write_file_virtual(
            "cache-a", [(11, 4096, 512, False), (12, 4096, 512, False)]
        )
        src.snapshot("v1")
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        stream = generate_send(src, "v1")
        receive(dst, stream)
        assert dst_pool.ddt.entry_count == 2
        assert dst.file("cache-a").get_block(0).checksum.startswith("v:")

    def test_receiver_dedups_against_existing_content(self):
        """Chained incrementals: a cache whose blocks already exist on the
        receiver (from other caches) must not grow the receiver's pool."""
        pool = make_pool()
        src = pool.create_dataset("scvol", record_size=4096)
        src.write_file_virtual("cache-a", [(11, 4096, 512, False)])
        src.snapshot("v1")
        src.write_file_virtual("cache-b", [(11, 4096, 512, False)])  # same sig
        src.snapshot("v2")
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        used = dst_pool.data_bytes
        receive(dst, generate_send(src, "v2", from_snapshot="v1"))
        assert dst_pool.data_bytes == used
        assert dst_pool.ddt.lookup("v:" + format(11, "016x")).refcount == 2

    def test_hole_records_apply(self):
        pool = make_pool()
        src = pool.create_dataset("scvol", record_size=4096)
        src.write_file_virtual(
            "cache-a", [(11, 4096, 512, False), (0, 4096, 0, True)]
        )
        src.snapshot("v1")
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("ccvol", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        assert dst.file("cache-a").get_block(1).is_hole


class TestDeleteRecreate:
    """Regression: a file deleted and re-created under the same name between
    two snapshots must be replicated as unlink + fresh writes (found by the
    hypothesis replication property test)."""

    def test_recreated_file_replaces_stale_blocks(self):
        src_pool = make_pool()
        src = src_pool.create_dataset("s", record_size=4096)
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("d", record_size=4096)
        src.write_block("f", 0, block(1))
        src.snapshot("v1")
        receive(dst, generate_send(src, "v1"))
        src.delete_file("f")
        src.write_block("f", 1, block(1))  # same content, different shape
        src.snapshot("v2")
        receive(dst, generate_send(src, "v2", from_snapshot="v1"))
        assert dst.file("f").get_block(0).is_hole
        assert not dst.file("f").get_block(1).is_hole
        assert dst.read_file("f") == bytes(4096) + block(1)

    def test_trailing_holes_replicate(self):
        src_pool = make_pool()
        src = src_pool.create_dataset("s", record_size=4096)
        dst_pool = make_pool()
        dst = dst_pool.create_dataset("d", record_size=4096)
        src.write_block("f", 0, block(2))
        src.file("f").set_block(3, src.file("f").get_block(3))  # grow w/ holes
        src.snapshot("v1")
        receive(dst, generate_send(src, "v1"))
        assert dst.file("f").block_count() == src.file("f").block_count()
