"""Observability: deterministic span tracing, Chrome trace export, and
latency attribution.

The contracts under test:

* span ids / exports are a pure function of the seed — two same-seed runs
  serialise to byte-identical trace files,
* every child span nests inside its parent's ``[start, end]`` interval,
* per boot, ``cache_s + net_s + disk_s + wait_s`` equals the end-to-end
  boot latency (the buckets partition the boot, they don't estimate it) —
  on hit-dominated, cold-cache and faulted runs alike.
"""

import json

import pytest

from repro.core import IaaSCluster, Squirrel
from repro.faults import FaultInjector, FaultPlan
from repro.obs import (
    ARC_COUNTERS,
    BUCKETS,
    BootAttribution,
    SpanTracer,
    attribution_block,
    chrome_trace,
    dump_chrome_trace,
)
from repro.sim import Engine, Timeline
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator
from repro.workload import StormConfig, TimedSquirrel, boot_storm

BLOCK = 65536


# -- span tracer ----------------------------------------------------------------------


class TestSpanTracer:
    def test_ids_are_dense_and_in_start_order(self):
        tracer = SpanTracer()
        spans = [tracer.span(f"s{i}") for i in range(3)]
        assert [s.span_id for s in spans] == [1, 2, 3]
        assert tracer.get(2) is spans[1]

    def test_child_inherits_parent_track(self):
        tracer = SpanTracer()
        root = tracer.span("boot", track="compute0")
        child = tracer.span("disk.read", parent=root)
        assert child.parent_id == root.span_id
        assert child.track == "compute0"
        orphan = tracer.span("gc")
        assert orphan.parent_id is None
        assert orphan.track == "gc"

    def test_end_is_idempotent_and_annotates(self):
        engine = Engine(seed=0)
        tracer = SpanTracer(engine)
        span = tracer.span("work", n=1)

        def proc():
            yield engine.timeout(2.0)
            span.end(outcome="ok")
            yield engine.timeout(5.0)
            span.end(outcome="late")  # must not move end_s

        engine.process(proc())
        engine.run()
        assert span.end_s == 2.0
        assert span.attrs == {"n": 1, "outcome": "late"}
        assert not span.open

    def test_close_open_spans_flags_unfinished(self):
        tracer = SpanTracer()
        tracer.span("a").end()
        dangling = tracer.span("b")
        assert tracer.close_open_spans() == 1
        assert dangling.attrs.get("unfinished") is True
        assert tracer.close_open_spans() == 0

    def test_summary_is_sorted_by_name(self):
        tracer = SpanTracer()
        for name in ("zeta", "alpha", "zeta"):
            tracer.span(name).end()
        summary = tracer.summary()
        assert list(summary) == ["alpha", "zeta"]
        assert summary["zeta"]["count"] == 2


# -- chrome export --------------------------------------------------------------------


class TestChromeTrace:
    def make_tracer(self):
        engine = Engine(seed=0)
        tracer = SpanTracer(engine)

        def proc():
            root = tracer.span("boot", track="compute0", image_id=3)
            yield engine.timeout(1.0)
            child = tracer.span("disk.read", parent=root, n_bytes=512)
            yield engine.timeout(0.5)
            child.end()
            root.end()

        engine.process(proc())
        engine.run()
        return tracer

    def test_events_carry_metadata_and_args(self):
        trace = chrome_trace({"squirrel": self.make_tracer()})
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        root = next(e for e in complete if e["name"] == "boot")
        child = next(e for e in complete if e["name"] == "disk.read")
        assert root["args"]["image_id"] == 3
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert child["ts"] == pytest.approx(1e6)
        assert child["dur"] == pytest.approx(0.5e6)

    def test_dump_is_deterministic(self):
        assert dump_chrome_trace({"p": self.make_tracer()}) == dump_chrome_trace(
            {"p": self.make_tracer()}
        )

    def test_pids_follow_sorted_process_names(self):
        trace = chrome_trace(
            {"zeta": self.make_tracer(), "alpha": self.make_tracer()}
        )
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "process_name"
        }
        assert names == {1: "alpha", 2: "zeta"}


# -- attribution ----------------------------------------------------------------------


class TestBootAttribution:
    def test_charges_partition_elapsed_time(self):
        engine = Engine(seed=0)
        timeline = Timeline(engine)
        recorded = {}

        def proc():
            att = BootAttribution(engine)
            yield engine.timeout(2.0)
            att.charge("net_s")
            yield engine.timeout(3.0)
            att.charge_split(1.0, "disk_s")  # 1 s service, 2 s queued
            yield engine.timeout(0.5)
            att.observe(timeline)  # residual -> wait_s
            recorded.update(att.buckets)

        engine.process(proc())
        engine.run()
        assert recorded["net_s"] == pytest.approx(2.0)
        assert recorded["disk_s"] == pytest.approx(1.0)
        assert recorded["wait_s"] == pytest.approx(2.5)
        assert recorded["cache_s"] == 0.0
        assert sum(recorded.values()) == pytest.approx(5.5)
        assert timeline.stats("attr_net_s").count == 1

    def test_charge_split_clamps_service_to_elapsed(self):
        engine = Engine(seed=0)
        att = BootAttribution(engine)
        att.charge_split(10.0, "disk_s")  # nothing elapsed: nothing charged
        assert att.buckets["disk_s"] == 0.0
        assert att.buckets["wait_s"] == 0.0

    def test_attribution_block_shape(self):
        timeline = Timeline()
        timeline.count("arc_t1_hits", 3)
        timeline.count("arc_misses", 1)
        for bucket in BUCKETS:
            timeline.observe(f"attr_{bucket}", 1.0)
        block = attribution_block(timeline)
        assert set(block["arc"]) == set(ARC_COUNTERS)
        assert block["hit_tier_fractions"]["t1"] == pytest.approx(0.75)
        assert block["hit_tier_fractions"]["miss"] == pytest.approx(0.25)
        assert block["tiers"]["cache_s"]["count"] == 1


# -- instrumented boot path -----------------------------------------------------------


@pytest.fixture(scope="module")
def dataset():
    return AzureCommunityDataset(DatasetConfig(scale=1 / 2048))


def make_rig(dataset, n_compute=4, seed=0):
    cluster = IaaSCluster.build(n_compute=n_compute, n_storage=4, block_size=BLOCK)
    squirrel = Squirrel(
        cluster=cluster,
        estimator=make_estimator("gzip6", (BLOCK,), samples_per_point=2),
    )
    engine = Engine(seed=seed)
    timeline = Timeline(engine)
    return squirrel, engine, timeline, TimedSquirrel(squirrel, dataset, engine, timeline)


def run_boots(dataset, *, faults=None, force_cold=False, repeats=3):
    """A small rig booting each of four images ``repeats`` times per node;
    returns the rig after the run (the first boot populates the node's ARC,
    the second hits T1, the third hits T2)."""
    squirrel, engine, timeline, timed = make_rig(dataset)
    for spec in dataset.images[:4]:
        squirrel.register(spec)
    if faults is not None:
        FaultInjector(timed, FaultPlan.parse(faults)).start()

    def vm(at, image_id, node_name):
        yield engine.timeout(at)
        yield timed.boot(image_id, node_name, force_cold=force_cold)

    for repeat in range(repeats):
        for i, spec in enumerate(dataset.images[:4]):
            engine.process(
                vm(2.0 * repeat + 0.3 * i, spec.image_id, f"compute{i % 4}")
            )
    engine.run()
    timed.tracer.close_open_spans()
    return squirrel, engine, timeline, timed


class TestAttributionInvariant:
    def assert_partition(self, timeline):
        latencies = timeline.observations("boot_latency_s")
        buckets = [timeline.observations(f"attr_{b}") for b in BUCKETS]
        assert latencies, "no boots ran"
        for series in buckets:
            assert len(series) == len(latencies)
        for index, latency in enumerate(latencies):
            total = sum(series[index] for series in buckets)
            assert total == pytest.approx(latency, rel=1e-9, abs=1e-9)

    def test_hit_dominated_run(self, dataset):
        _, _, timeline, _ = run_boots(dataset)
        assert timeline.counter("cache_hits") == 12
        assert timeline.counter("arc_t1_hits") > 0  # second boots from memory
        assert timeline.counter("arc_t2_hits") > 0  # third boots from T2
        self.assert_partition(timeline)

    def test_cold_cache_run(self, dataset):
        _, _, timeline, _ = run_boots(dataset, force_cold=True)
        assert timeline.counter("cache_hits") == 0
        self.assert_partition(timeline)

    def test_faulted_run(self, dataset):
        _, _, timeline, _ = run_boots(
            dataset, faults="crash:compute1@1+20,flap:compute2@1+5"
        )
        assert timeline.counter("boot_interrupts") >= 1
        self.assert_partition(timeline)

    def test_arc_counters_surface_in_timeline(self, dataset):
        _, _, timeline, timed = run_boots(dataset)
        lookups = (
            timeline.counter("arc_t1_hits")
            + timeline.counter("arc_t2_hits")
            + timeline.counter("arc_misses")
        )
        assert lookups > 0
        assert timeline.gauge_series("arc_p:compute0")
        block = attribution_block(timeline)
        assert block["hit_tier_fractions"]["t2"] > 0.0

    def test_node_crash_wipes_the_arc(self, dataset):
        _, engine, _, timed = make_rig(dataset)
        timed.arc["compute1"].put(("warm", 0), True, 1024)
        FaultInjector(timed, FaultPlan.parse("crash:compute1@1+10")).start()
        engine.run()
        assert timed.arc["compute1"].resident_bytes == 0


class TestSpanNesting:
    def test_every_child_nests_inside_its_parent(self, dataset):
        _, _, _, timed = run_boots(
            dataset, faults="crash:compute1@1+20,brick:storage0@1+10"
        )
        spans = timed.tracer.spans()
        assert spans
        for span in spans:
            assert not span.open
            if span.parent_id is not None:
                assert timed.tracer.get(span.parent_id).encloses(span)

    def test_interrupted_spans_record_their_killer(self, dataset):
        _, _, timeline, timed = run_boots(dataset, faults="crash:compute1@1+20")
        assert timeline.counter("boot_interrupts") >= 1
        killed = [
            s for s in timed.tracer.spans()
            if s.attrs.get("interrupted") == "node-crash"
        ]
        assert killed

    def test_fault_spans_cover_the_outage(self, dataset):
        _, _, _, timed = run_boots(dataset, faults="crash:compute1@1+20")
        (crash,) = timed.tracer.spans("fault.crash")
        assert crash.start_s == pytest.approx(1.0)
        assert crash.end_s >= 21.0  # outage + resync before the span closes


# -- storm-level determinism ----------------------------------------------------------


def faulted_storm_config(**overrides):
    base = dict(
        n_nodes=16, vms_per_node=4, scale=1 / 4096, seed=3,
        faults=FaultPlan.parse(
            "crash:compute1@5+30,flap:compute2@8+10,brick:storage0@3+15"
        ),
    )
    base.update(overrides)
    return StormConfig(**base)


@pytest.fixture(scope="module")
def storm_dataset():
    return AzureCommunityDataset(DatasetConfig(scale=1 / 4096))


class TestStormTraces:
    def test_same_seed_traces_are_byte_identical(self, tmp_path, storm_dataset):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            boot_storm(
                faulted_storm_config(), dataset=storm_dataset, trace_path=path
            )
        first, second = (path.read_bytes() for path in paths)
        assert first == second

        trace = json.loads(first)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete
        # the JSON view preserves nesting too (per process, in microseconds)
        for pid in {e["pid"] for e in complete}:
            by_id = {
                e["args"]["span_id"]: e for e in complete if e["pid"] == pid
            }
            for event in by_id.values():
                parent = by_id.get(event["args"].get("parent_id"))
                if parent is not None:
                    assert parent["ts"] <= event["ts"] + 1e-6
                    assert (
                        event["ts"] + event["dur"]
                        <= parent["ts"] + parent["dur"] + 1e-6
                    )

    def test_report_carries_attribution_and_spans(self, storm_dataset):
        report = boot_storm(
            faulted_storm_config(n_nodes=4, vms_per_node=2),
            dataset=storm_dataset,
        )
        for side in (report.squirrel, report.baseline):
            tiers = side.attribution["tiers"]
            total = sum(tiers[bucket]["mean"] for bucket in BUCKETS)
            assert total == pytest.approx(side.latency.mean, rel=1e-9)
            assert side.spans["boot"]["count"] == side.boots
        payload = report.to_dict()
        assert set(payload["squirrel"]["attribution"]["arc"]) == set(ARC_COUNTERS)


# -- runtime telemetry ----------------------------------------------------------------


from repro.obs import runtime as obs_runtime
from repro.obs.runtime import ProgressReporter, RuntimeProfiler


def _ticking_workload(engine, n=50):
    def proc():
        for _ in range(n):
            yield engine.timeout(1.0)

    engine.process(proc(), label="ticker")


class TestRuntimeProfiler:
    def test_engine_observer_counts_events_and_sim_time(self):
        profiler = RuntimeProfiler()
        engine = Engine(seed=0)
        engine.observer = profiler
        _ticking_workload(engine, n=50)
        engine.run()
        stats = profiler.engine_stats()
        assert stats["runs"] == 1
        assert stats["events"] == engine.events_processed > 0
        assert stats["sim_s"] == pytest.approx(50.0)
        assert stats["wall_s"] > 0
        assert stats["events_per_s"] > 0

    def test_observer_does_not_change_the_trace(self):
        def run(observer):
            engine = Engine(seed=7, trace=True)
            if observer:
                engine.observer = RuntimeProfiler()
            _ticking_workload(engine, n=20)
            engine.run()
            return engine.trace

        assert run(False) == run(True)

    def test_tick_fires_on_the_declared_cadence(self):
        class CountingProfiler(RuntimeProfiler):
            tick_every = 10
            ticks = 0

            def tick(self, engine):
                type(self).ticks += 1
                super().tick(engine)

        profiler = CountingProfiler()
        engine = Engine(seed=0)
        engine.observer = profiler
        _ticking_workload(engine, n=95)
        engine.run()
        # ~1 event per timeout plus process start/end bookkeeping
        assert CountingProfiler.ticks == engine.events_processed // 10

    def test_phases_accumulate_by_name(self):
        clock = iter(float(i) for i in range(100))
        profiler = RuntimeProfiler(clock=lambda: next(clock))
        with profiler.phase("setup"):
            pass
        with profiler.phase("setup"):
            pass
        block = profiler.block()
        assert block["schema"] == "repro.runtime/1"
        assert block["phases"]["setup"]["count"] == 2
        assert block["phases"]["setup"]["wall_s"] == pytest.approx(2.0)

    def test_active_registry_attaches_and_detaches(self):
        engine = Engine(seed=0)
        obs_runtime.attach(engine)
        assert engine.observer is None  # no active profiler -> no-op
        profiler = RuntimeProfiler()
        with obs_runtime.profiled(profiler):
            assert obs_runtime.current() is profiler
            inner = Engine(seed=0)
            obs_runtime.attach(inner)
            assert inner.observer is profiler
        assert obs_runtime.current() is None

    def test_block_shape_is_stable(self):
        profiler = RuntimeProfiler()
        profiler.point("seed=0", 0.25)
        block = profiler.block()
        assert set(block) == {
            "schema", "wall_s", "phases", "engine",
            "rss_high_water_bytes", "points",
        }
        assert block["points"] == [
            {"label": "seed=0", "status": "run", "wall_s": 0.25}
        ]
        assert block["rss_high_water_bytes"] is None or (
            block["rss_high_water_bytes"] > 0
        )


class TestProgressReporter:
    def _reporter(self, stream):
        # a fake clock that advances 1 s per call defeats the throttle
        clock = iter(float(i) for i in range(1000))
        return ProgressReporter(stream, clock=lambda: next(clock))

    def test_heartbeat_goes_to_the_stream_only(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        profiler = RuntimeProfiler(progress=reporter)
        profiler.tick_every = 10
        engine = Engine(seed=0)
        engine.observer = profiler
        _ticking_workload(engine, n=60)
        with profiler.phase("storm.run"):
            engine.run()
        lines = stream.getvalue().splitlines()
        assert reporter.emitted == len(lines) > 0
        assert all(line.startswith("[progress] ") for line in lines)
        assert any("storm.run" in line and "ev/s" in line for line in lines)

    def test_fraction_enables_percent_and_eta(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        profiler = RuntimeProfiler(progress=reporter)
        profiler.tick_every = 10
        engine = Engine(seed=0)
        engine.observer = profiler
        _ticking_workload(engine, n=60)
        reporter.phase("storm.run")
        reporter.set_fraction(lambda: engine.now / 60.0)
        engine.run()
        text = stream.getvalue()
        assert "%" in text and "eta" in text

    def test_point_done_reports_progress_and_eta(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        reporter.point_done(2, 4, 10.0, workers=2)
        line = stream.getvalue()
        assert "sweep 2/4 points" in line
        assert "avg 5.0s/pt" in line
        assert "eta 5s" in line
