"""Unit tests for boot-trace synthesis."""

import numpy as np
import pytest

from repro.boot.trace import OpKind, TraceConfig, generate_boot_trace
from repro.vmi import AzureCommunityDataset, DatasetConfig


@pytest.fixture(scope="module")
def specs():
    return AzureCommunityDataset(DatasetConfig(scale=1 / 1024)).images[:20]


class TestTraceShape:
    def test_reads_cover_whole_cache(self, specs):
        for spec in specs[:5]:
            trace = generate_boot_trace(spec)
            covered = np.zeros(spec.cache_bytes, dtype=bool)
            for op in trace.read_ops():
                covered[op.offset : op.offset + op.length] = True
            assert covered.all(), "boot must read the whole working set"

    def test_read_bytes_equal_cache_bytes(self, specs):
        trace = generate_boot_trace(specs[0])
        assert trace.read_bytes == specs[0].cache_bytes

    def test_reads_within_bounds(self, specs):
        trace = generate_boot_trace(specs[0])
        for op in trace.read_ops():
            assert 0 <= op.offset
            assert op.offset + op.length <= specs[0].cache_bytes

    def test_read_sizes_bounded(self, specs):
        cfg = TraceConfig()
        trace = generate_boot_trace(specs[0], cfg)
        sizes = [op.length for op in trace.read_ops()]
        assert max(sizes) <= cfg.max_read_bytes

    def test_cpu_time_realistic(self, specs):
        trace = generate_boot_trace(specs[0])
        assert 5.0 <= trace.cpu_seconds <= 60.0

    def test_deterministic(self, specs):
        a = generate_boot_trace(specs[0])
        b = generate_boot_trace(specs[0])
        assert [(o.kind, o.offset, o.length) for o in a.ops] == [
            (o.kind, o.offset, o.length) for o in b.ops
        ]

    def test_different_images_different_traces(self, specs):
        a = generate_boot_trace(specs[0])
        b = generate_boot_trace(specs[1])
        assert [(o.offset, o.length) for o in a.read_ops()] != [
            (o.offset, o.length) for o in b.read_ops()
        ]

    def test_cpu_identical_across_run_structures(self, specs):
        """CPU is keyed by image only, so storage configs compare fairly."""
        spec = specs[0]
        a = generate_boot_trace(spec, TraceConfig(mean_run_bytes=64 * 1024))
        b = generate_boot_trace(spec, TraceConfig(mean_run_bytes=256 * 1024))
        assert a.cpu_seconds == pytest.approx(b.cpu_seconds)

    def test_not_perfectly_sequential(self, specs):
        """Some backward jumps must exist (out-of-order file access)."""
        cfg = TraceConfig(mean_run_bytes=4 * 1024)  # force many runs
        trace = generate_boot_trace(specs[0], cfg)
        offsets = [op.offset for op in trace.read_ops()]
        backward = sum(1 for a, b in zip(offsets, offsets[1:]) if b < a)
        assert backward > 0

    def test_cpu_interleaved_with_reads(self, specs):
        trace = generate_boot_trace(specs[0])
        kinds = [op.kind for op in trace.ops]
        assert OpKind.CPU in kinds and OpKind.READ in kinds
        assert kinds[0] is OpKind.CPU  # boots start with kernel CPU work
