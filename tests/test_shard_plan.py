"""Shard plans and similarity weights: deterministic, mode-correct,
and total (every image id resolves to a shard, planned or not)."""

import pytest

from repro.common.errors import ConfigError
from repro.shard import (
    GROUPING_MODES,
    ShardPlan,
    SimilarityGraph,
    build_plan,
    hoard_grains,
    shard_name,
    weight,
)
from repro.vmi import AzureCommunityDataset, DatasetConfig

TINY = 1 / 2048


@pytest.fixture(scope="module")
def all_specs():
    return list(AzureCommunityDataset(DatasetConfig(scale=TINY)))


@pytest.fixture(scope="module")
def specs(all_specs):
    return all_specs[:48]


class TestSimilarityWeights:
    def test_self_weight_is_one(self, specs):
        for spec in specs[:4]:
            assert weight(spec, spec) == 1.0

    def test_symmetric_and_bounded(self, specs):
        for a in specs[:6]:
            for b in specs[:6]:
                w = weight(a, b)
                assert w == pytest.approx(weight(b, a))
                assert 0.0 <= w <= 1.0

    def test_same_release_beats_strangers(self, all_specs):
        by_release = {}
        for spec in all_specs:
            by_release.setdefault(spec.release.name, []).append(spec)
        siblings = next(v for v in by_release.values() if len(v) >= 2)
        a, b = siblings[:2]
        stranger = next(
            s for s in all_specs if s.release.family != a.release.family
        )
        assert weight(a, b) > weight(a, stranger)

    def test_hoard_grains_positive(self, specs):
        assert all(hoard_grains(spec) > 0 for spec in specs)

    def test_graph_edges_respect_threshold(self, specs):
        graph = SimilarityGraph(specs[:8])
        assert len(graph) == 8
        edges = graph.edges(threshold=0.3)
        assert all(w >= 0.3 for _i, _j, w in edges)
        # graph weights agree with the pairwise function
        for i, j, w in edges[:5]:
            assert w == weight(specs[i], specs[j])


class TestBuildPlan:
    def test_trivial_plan_for_one_shard(self, specs):
        plan = build_plan(specs, 1)
        assert plan.names == ("s00",)
        assert set(plan.assignment.values()) == {"s00"}
        assert len(plan.assignment) == len(specs)

    @pytest.mark.parametrize("mode", GROUPING_MODES)
    def test_plans_deterministic(self, specs, mode):
        owners = {spec.image_id: spec.image_id % 7 for spec in specs}
        a = build_plan(specs, 4, mode, owners=owners)
        b = build_plan(specs, 4, mode, owners=owners)
        assert a.assignment == b.assignment
        assert a.names == b.names == tuple(shard_name(i) for i in range(4))

    def test_similarity_plan_is_weight_coherent(self, specs):
        """Intra-shard pairs are on average more similar than cross-shard
        pairs — the whole point of similarity grouping."""
        plan = build_plan(specs, 4, "similarity")
        intra, cross = [], []
        for i, a in enumerate(specs):
            for b in specs[i + 1:]:
                side = (
                    intra
                    if plan.shard_of(a.image_id) == plan.shard_of(b.image_id)
                    else cross
                )
                side.append(weight(a, b))
        assert intra and cross
        assert sum(intra) / len(intra) > sum(cross) / len(cross)

    def test_similarity_threshold_changes_grouping(self, specs):
        loose = build_plan(specs, 8, "similarity", threshold=0.01)
        tight = build_plan(specs, 8, "similarity", threshold=0.99)
        # a near-one threshold rejects every anchor, opening all 8 groups;
        # a near-zero threshold merges everything into the first group
        used_loose = {s for s in loose.assignment.values()}
        used_tight = {s for s in tight.assignment.values()}
        assert len(used_loose) < len(used_tight)

    def test_tenant_mode_follows_owners(self, specs):
        owners = {spec.image_id: spec.image_id % 5 for spec in specs}
        plan = build_plan(specs, 3, "tenant", owners=owners)
        for spec in specs:
            expected = shard_name(owners[spec.image_id] % 3)
            assert plan.shard_of(spec.image_id) == expected

    def test_tenant_mode_requires_owners(self, specs):
        with pytest.raises(ConfigError, match="owner"):
            build_plan(specs, 3, "tenant")

    def test_bad_modes_and_counts_rejected(self, specs):
        with pytest.raises(ConfigError, match="grouping"):
            build_plan(specs, 2, "alphabetical")
        with pytest.raises(ConfigError, match="shard"):
            build_plan(specs, 0)


class TestShardPlanLookup:
    def test_unplanned_image_gets_modular_home(self):
        plan = ShardPlan(
            mode="tenant", names=("s00", "s01", "s02"), assignment={0: "s02"}
        )
        assert plan.shard_of(0) == "s02"
        assert plan.shard_of(100) == shard_name(100 % 3)
        assert plan.shard_of(101) == shard_name(101 % 3)

    def test_members_sorted_per_shard(self, specs):
        owners = {spec.image_id: spec.image_id % 2 for spec in specs}
        plan = build_plan(specs, 2, "tenant", owners=owners)
        for shard in plan.names:
            members = plan.members(shard)
            assert members == sorted(members)
        assert sum(len(plan.members(s)) for s in plan.names) == len(specs)

    def test_to_dict_reports_group_sizes(self, specs):
        plan = build_plan(specs, 4, "similarity")
        payload = plan.to_dict()
        assert payload["mode"] == "similarity"
        assert payload["images"] == len(specs)
        assert sum(payload["group_sizes"].values()) == len(specs)
