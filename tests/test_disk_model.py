"""Unit tests for the rotational disk model."""

import pytest

from repro.disk import DAS4_DISK, DAS4_RAID0, DiskModel


@pytest.fixture
def disk():
    return DiskModel(DAS4_DISK, span_bytes=1 << 40)


class TestSeekModel:
    def test_contiguous_read_has_no_seek(self, disk):
        disk.read(1 << 30, 64 * 1024)  # initial positioning: one seek
        elapsed = disk.read((1 << 30) + 64 * 1024, 64 * 1024)
        assert elapsed == pytest.approx(64 * 1024 / DAS4_DISK.sequential_bw)
        assert disk.total_seeks == 1  # only the initial positioning

    def test_long_seek_costs_more_than_short(self, disk):
        short = disk.seek_time(0, 10 << 20)
        long = disk.seek_time(0, 500 << 30)
        assert short < long

    def test_seek_bounded_by_full_stroke(self, disk):
        worst = disk.seek_time(0, 1 << 40)
        assert worst <= DAS4_DISK.full_stroke_s + DAS4_DISK.rotational_latency_s + 1e-12

    def test_within_contiguity_window_is_free(self, disk):
        assert disk.seek_time(1000, 1000 + 128 * 1024) == 0.0


class TestReadAccounting:
    def test_counters(self, disk):
        disk.read(0, 4096)
        disk.read(1 << 30, 4096)
        assert disk.total_requests == 2
        assert disk.total_bytes == 8192
        assert disk.total_time_s > 0

    def test_reset(self, disk):
        disk.read(0, 4096)
        disk.reset_counters()
        assert disk.total_requests == 0
        assert disk.total_time_s == 0.0

    def test_negative_size_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.read(0, -1)

    def test_head_advances(self, disk):
        disk.read(100, 4096)
        assert disk.head_offset == 100 + 4096


class TestProfiles:
    def test_raid0_streams_faster(self):
        single = DiskModel(DAS4_DISK)
        raid = DiskModel(DAS4_RAID0)
        size = 100 << 20
        assert raid.read(0, size) < single.read(0, size)

    def test_random_reads_dominated_by_seeks(self):
        """4 KB random reads: service time must be milliseconds, not µs —
        the effect that makes deduplicated small-block boots slow."""
        disk = DiskModel(DAS4_DISK, span_bytes=1 << 40)
        total = 0.0
        for i in range(100):
            total += disk.read((i * 7919 % 1024) << 30, 4096)
        assert total / 100 > 0.004

    def test_scattered_vs_sequential_pattern(self):
        seq = DiskModel(DAS4_DISK)
        scat = DiskModel(DAS4_DISK)
        seq_time = sum(seq.read(i * 65536, 65536) for i in range(64))
        scat_time = sum(scat.read((i * 104729 % 4096) << 24, 65536) for i in range(64))
        assert scat_time > 3 * seq_time
