"""Property-based tests: replication and metric invariants.

Hypothesis drives random dataset mutations through snapshot/send/receive and
asserts the replication contract (receiver == sender, always), plus range
and monotonicity invariants of the analysis metrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import cross_similarity, dedup_ratio
from repro.vmi import block_view
from repro.zfs import ZPool, generate_send, receive


def block(tag: int, size: int = 4096) -> bytes:
    seed = (tag % 251 + 1).to_bytes(4, "little") * 16
    return (seed * (size // len(seed) + 1))[:size]


def fingerprint(ds):
    """Full content identity of a dataset's head."""
    return {
        name: tuple(bp.checksum for bp in ds.file(name).blocks)
        for name in ds.file_names()
    }


class TestReplicationProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["write", "delete"]),
                st.integers(0, 3),  # file selector
                st.integers(0, 4),  # block index
                st.integers(0, 30),  # content tag
            ),
            min_size=1,
            max_size=30,
        ),
        snapshot_every=st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_chained_incrementals_converge(self, ops, snapshot_every):
        """Any op sequence, snapshotted at arbitrary cadence and shipped as
        chained incremental streams, leaves the replica identical."""
        src_pool = ZPool(capacity=256 << 20)
        src = src_pool.create_dataset("scvol", record_size=4096)
        dst_pool = ZPool(capacity=256 << 20)
        dst = dst_pool.create_dataset("ccvol", record_size=4096)

        serial = 0
        last_shipped: str | None = None

        def ship():
            nonlocal serial, last_shipped
            serial += 1
            name = f"v{serial}"
            src.snapshot(name)
            stream = generate_send(src, name, from_snapshot=last_shipped)
            receive(dst, stream)
            last_shipped = name

        for index, (op, file_sel, block_idx, tag) in enumerate(ops):
            file_name = f"f{file_sel}"
            if op == "write":
                src.write_block(file_name, block_idx, block(tag))
            elif op == "delete" and src.has_file(file_name):
                src.delete_file(file_name)
            if (index + 1) % snapshot_every == 0:
                ship()
        ship()
        assert fingerprint(dst) == fingerprint(src)

    @given(
        tags=st.lists(st.integers(0, 10), min_size=1, max_size=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_receive_preserves_dedup(self, tags):
        """However redundant the content, the receiver's pool allocates at
        most what the sender's pool did."""
        src_pool = ZPool(capacity=64 << 20)
        src = src_pool.create_dataset("s", record_size=4096)
        for index, tag in enumerate(tags):
            src.write_block("f", index, block(tag))
        src.snapshot("v1")
        dst_pool = ZPool(capacity=64 << 20)
        dst = dst_pool.create_dataset("d", record_size=4096)
        receive(dst, generate_send(src, "v1"))
        assert dst_pool.data_bytes <= src_pool.data_bytes
        assert dst_pool.ddt.entry_count == len({t for t in tags})


def views_from(sig_lists, block_size=1024):
    return [
        block_view(np.asarray(sigs, dtype=np.uint64) << np.uint64(3) | np.uint64(2),
                   block_size)
        for sigs in sig_lists
    ]


class TestMetricProperties:
    @given(
        sig_lists=st.lists(
            st.lists(st.integers(1, 50), min_size=1, max_size=40),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_similarity_bounded(self, sig_lists):
        value = cross_similarity(views_from(sig_lists))
        assert 0.0 <= value <= 1.0

    @given(
        sigs=st.lists(st.integers(1, 50), min_size=1, max_size=60),
        copies=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_copies_have_similarity_one(self, sigs, copies):
        if copies < 2:
            return
        value = cross_similarity(views_from([sigs] * copies))
        assert value == pytest.approx(1.0)

    @given(
        sig_lists=st.lists(
            st.lists(st.integers(1, 100), min_size=1, max_size=40),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_dedup_at_least_one(self, sig_lists):
        assert dedup_ratio(views_from(sig_lists)) >= 1.0

    @given(
        sigs=st.lists(st.integers(1, 30), min_size=4, max_size=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_dedup_equals_count_over_distinct(self, sigs):
        value = dedup_ratio(views_from([sigs]))
        assert value == pytest.approx(len(sigs) / len(set(sigs)))
