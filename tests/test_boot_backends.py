"""Unit tests for the boot storage backends (XFS file, cVolume)."""

import pytest

from repro.boot.backends import CVolumeBackend, XfsFileBackend, ZfsCostModel
from repro.boot.pagecache import PageCache
from repro.common.errors import BootError
from repro.disk import DAS4_RAID0, MultiStreamDisk
from repro.zfs import ZPool


def make_disk():
    return MultiStreamDisk(DAS4_RAID0, span_bytes=1 << 40)


class TestXfsFileBackend:
    def test_first_read_costs_disk_time(self):
        backend = XfsFileBackend("f", 1 << 20, make_disk(), PageCache(1 << 22))
        assert backend.read_range(0, 65536) > 0.0
        assert backend.disk_reads == 1

    def test_cached_read_is_free(self):
        backend = XfsFileBackend("f", 1 << 20, make_disk(), PageCache(1 << 22))
        backend.read_range(0, 65536)
        assert backend.read_range(0, 65536) == 0.0

    def test_out_of_bounds_rejected(self):
        backend = XfsFileBackend("f", 1000, make_disk(), PageCache(1 << 22))
        with pytest.raises(BootError):
            backend.read_range(900, 200)

    def test_span_offset_places_file_on_platter(self):
        disk = make_disk()
        near = XfsFileBackend("a", 1 << 20, disk, PageCache(1 << 22), span_offset=0)
        far = XfsFileBackend(
            "b", 1 << 20, disk, PageCache(1 << 22), span_offset=500 << 30
        )
        near.read_range(0, 4096)
        cost_far = far.read_range(0, 4096)  # long seek from near's position
        assert cost_far > 0.003


def build_volume(block_size=65536, n_files=3, blocks_per_file=16):
    pool = ZPool(capacity=1 << 32, store_payloads=False)
    volume = pool.create_dataset("cc", record_size=block_size, dedup=True)
    for f in range(n_files):
        volume.write_file_virtual(
            f"cache-{f}",
            [
                ((f * 1000 + i) << 3 | 2, block_size, block_size // 3, False)
                for i in range(blocks_per_file)
            ],
        )
    return volume


class TestCVolumeBackend:
    def test_read_charges_per_block_costs(self):
        volume = build_volume()
        costs = ZfsCostModel(per_block_cpu_s=1e-3, prefetch_hide_fraction=1.0)
        backend = CVolumeBackend(volume, "cache-0", make_disk(), costs)
        elapsed = backend.read_range(0, 4 * 65536)
        assert elapsed >= 4 * 1e-3
        assert backend.blocks_read == 4

    def test_arc_hit_is_free(self):
        volume = build_volume()
        backend = CVolumeBackend(volume, "cache-0", make_disk())
        first = backend.read_range(0, 65536)
        second = backend.read_range(0, 65536)
        assert first > 0.0
        assert second == 0.0

    def test_hole_blocks_cost_nothing(self):
        pool = ZPool(capacity=1 << 30, store_payloads=False)
        volume = pool.create_dataset("cc", record_size=65536, dedup=True)
        volume.write_file_virtual("f", [(0, 65536, 0, True)])
        backend = CVolumeBackend(volume, "f", make_disk())
        assert backend.read_range(0, 65536) == 0.0
        assert backend.blocks_read == 0

    def test_decompression_charged_for_compressed_blocks(self):
        volume = build_volume()
        backend = CVolumeBackend(volume, "cache-0", make_disk())
        backend.read_range(0, 2 * 65536)
        assert backend.bytes_decompressed == 2 * 65536

    def test_ddt_pressure_raises_cost(self):
        volume = build_volume(n_files=6, blocks_per_file=64)
        cheap = ZfsCostModel(ddt_cache_budget_bytes=1 << 40)
        pressed = ZfsCostModel(
            ddt_cache_budget_bytes=1, ddt_miss_penalty_s=5e-3
        )
        t_cheap = CVolumeBackend(
            volume, "cache-0", make_disk(), cheap
        ).read_range(0, 16 * 65536)
        t_pressed = CVolumeBackend(
            volume, "cache-0", make_disk(), pressed, size_scale=64.0
        ).read_range(0, 16 * 65536)
        assert t_pressed > t_cheap

    def test_size_scale_inflates_resident_estimate(self):
        volume = build_volume(n_files=6, blocks_per_file=64)
        costs = ZfsCostModel(ddt_cache_budget_bytes=64 << 10)
        small = CVolumeBackend(volume, "cache-0", make_disk(), costs, size_scale=1.0)
        large = CVolumeBackend(volume, "cache-0", make_disk(), costs, size_scale=512.0)
        assert large._ddt_resident_fraction <= small._ddt_resident_fraction
